#include "core/parallel_driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/concurrent_gamma.hpp"
#include "core/rct.hpp"
#include "core/score_kernel.hpp"
#include "core/watchdog.hpp"
#include "partition/range_partitioner.hpp"
#include "util/bounded_queue.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

/// Tracks the contiguous prefix of placed vertex ids. The Γ window base
/// follows this low-watermark so a delayed vertex's row survives its delay.
///
/// Two disciplines behind one interface (HotPathMode): the striped baseline
/// serializes every mark behind a mutex; the lock-free mode stores a flag
/// ring of atomics and advances the watermark with a CAS loop — the CAS
/// winner retires the slot, losers just reload and re-test, so no worker
/// ever blocks here. At M=1 the CAS always succeeds first try and the two
/// modes return identical watermarks for identical mark sequences.
///
/// Ring-aliasing caveat (both modes, inherited from PR 4): the ring spans
/// the maximum in-flight id spread, so two live ids should never share a
/// slot. If sizing is ever violated, a lost or phantom mark can stall the
/// watermark — which only stalls the Γ slide (heuristic staleness), never
/// the pipeline: quiesce and termination are driven by placed_total. The
/// lock-free clear-after-CAS preserves exactly this failure envelope.
class WatermarkTracker {
 public:
  WatermarkTracker(std::size_t span, bool lock_free)
      : lock_free_(lock_free),
        ring_(std::max<std::size_t>(span, 1), false),
        flags_(std::max<std::size_t>(span, 1)) {
    for (auto& f : flags_) f.store(0, std::memory_order_relaxed);
  }

  /// Mark id placed; returns the new watermark (first unplaced id).
  VertexId mark_done(VertexId id, PerfStats* perf = nullptr) {
    if (!lock_free_) {
      std::lock_guard lock(mutex_);
      const std::size_t slot = id % ring_.size();
      ring_[slot] = true;
      while (ring_[watermark_ % ring_.size()]) {
        ring_[watermark_ % ring_.size()] = false;
        ++watermark_;
      }
      return watermark_;
    }
    const std::size_t size = flags_.size();
    // release pairs with the acquire flag loads below: whichever thread
    // advances the watermark past `id` has observed this store.
    flags_[id % size].store(1, std::memory_order_release);
    VertexId w = watermark_atomic_.load(std::memory_order_acquire);
    while (flags_[w % size].load(std::memory_order_acquire) != 0) {
      if (watermark_atomic_.compare_exchange_weak(w, w + 1,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        // CAS winner owns slot w's retirement; the slot's next occupant is
        // at least w + span, which sizing guarantees is not yet in flight.
        flags_[w % size].store(0, std::memory_order_relaxed);
        ++w;
      } else if (perf != nullptr) {
        // w was reloaded by the failed CAS; loop re-tests its flag.
        perf->add_count(PerfCounter::kWatermarkCasRetries, 1);
      }
    }
    return w;
  }

 private:
  const bool lock_free_;
  std::mutex mutex_;
  std::vector<bool> ring_;
  VertexId watermark_ = 0;
  std::vector<std::atomic<std::uint8_t>> flags_;
  std::atomic<VertexId> watermark_atomic_{0};
};

/// Per-partition load counters, one cache line per partition: every commit
/// does three fetch_adds on its target partition, and with the old parallel
/// arrays (vertex/edge/logical in separate vectors) up to 8 partitions'
/// counters shared one line, so workers committing to DIFFERENT partitions
/// still ping-ponged it. One aligned block per partition makes cross-
/// partition commits contention-free.
struct alignas(64) PartitionLoad {
  std::atomic<std::uint64_t> vertices{0};
  std::atomic<std::uint64_t> edges{0};
  std::atomic<std::uint64_t> logical{0};
};

struct SharedState {
  SharedState(VertexId n, EdgeId m, const PartitionConfig& config,
              const ParallelOptions& options, std::uint32_t shards)
      : config(config),
        num_vertices(n),
        capacity(partition_capacity(n, m, config)),
        route(n),
        loads(config.num_partitions),
        gamma(n, config.num_partitions, shards),
        logical(n, config.num_partitions),
        options(options) {
    for (auto& r : route) r.store(kUnassigned, std::memory_order_relaxed);
    for (PartitionId i = 0; i < config.num_partitions; ++i) {
      loads[i].logical.store(options.use_locality ? logical.range_size(i) : 0,
                             std::memory_order_relaxed);
    }
  }

  double load(PartitionId i) const {
    // kBoth degrades to the vertex constraint in the parallel driver (the
    // paper's primary constraint; racy dual-capacity checks are not worth
    // the extra synchronization).
    return config.balance == BalanceMode::kEdge
               ? static_cast<double>(loads[i].edges.load(std::memory_order_relaxed))
               : static_cast<double>(loads[i].vertices.load(std::memory_order_relaxed));
  }

  const PartitionConfig config;
  const VertexId num_vertices;
  const double capacity;
  std::vector<std::atomic<PartitionId>> route;
  std::vector<PartitionLoad> loads;
  ConcurrentGammaWindow gamma;
  RangeTable logical;
  const ParallelOptions options;
  /// On its own line: every worker bumps it on every commit, and the
  /// eta/quiesce readers should not drag the delayed/forced lines with it.
  alignas(64) std::atomic<std::uint64_t> placed_total{0};
  alignas(64) std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> forced{0};
  /// Last-rung governor degradation: replace scoring with a deterministic
  /// capacity-weighted hash vote (and stop feeding the Γ window).
  std::atomic<bool> hash_fallback{false};
};

class Worker {
 public:
  /// `perf` is a caller-owned, caller-thread-local sink (PerfStats is not
  /// thread-safe); nullptr disables instrumentation. `watchdog`+`index`
  /// route the per-commit heartbeat (nullptr = no watchdog, e.g. the
  /// monitor's own rescue worker).
  /// `delta` is the worker's private epoch-local Γ buffer (nullptr = eager
  /// shared increments — the striped mode, and the single-threaded rescue/
  /// finisher workers which have no epoch structure). `epoch_records` > 0
  /// publishes the buffer every that many commits.
  Worker(SharedState& state, Rct* rct, WatermarkTracker& watermark,
         PerfStats* perf = nullptr, PipelineWatchdog* watchdog = nullptr,
         unsigned index = 0, GammaDeltaBuffer* delta = nullptr,
         std::uint64_t epoch_records = 0)
      : state_(state),
        rct_(rct),
        watermark_(watermark),
        perf_(perf),
        watchdog_(watchdog),
        index_(index),
        delta_(delta),
        epoch_records_(epoch_records) {}

  /// Score + pick; bumps RCT counters of in-flight out-neighbors along the
  /// out-list traversal (the "no additional runtime cost" counting of the
  /// paper).
  PartitionId choose(const OwnedVertexRecord& record, bool bump_rct) {
    PerfScope scope(perf_, PerfStage::kScore);
    const PartitionId k = state_.config.num_partitions;
    const double lambda = state_.options.spnl.lambda;
    physical_.assign(k, 0.0);
    logical_.assign(k, 0.0);
    scores_.assign(k, 0.0);

    if (state_.hash_fallback.load(std::memory_order_relaxed)) {
      // Degraded last rung: a deterministic hash vote run through the normal
      // capacity weighting below — balance survives, affinity does not.
      scores_[static_cast<PartitionId>(mix64(kDegradedHashSeed ^ record.id) % k)] =
          1.0;
      return pick(k);
    }

    for (VertexId u : record.out) {
      if (bump_rct && rct_ != nullptr && u != record.id) rct_->bump_if_present(u);
      if (u >= state_.route.size()) continue;
      const PartitionId placed = state_.route[u].load(std::memory_order_relaxed);
      if (placed != kUnassigned) {
        physical_[placed] += 1.0;
      } else if (state_.options.use_locality) {
        logical_[state_.logical.partition_of(u)] += 1.0;
      }
    }

    const double placed_total =
        static_cast<double>(state_.placed_total.load(std::memory_order_relaxed));
    for (PartitionId i = 0; i < k; ++i) {
      double e = 0.0;
      if (state_.options.use_locality) {
        switch (state_.options.spnl.eta_policy) {
          case EtaPolicy::kPaper: {
            const double lt = static_cast<double>(
                state_.loads[i].logical.load(std::memory_order_relaxed));
            const double pt = static_cast<double>(
                state_.loads[i].vertices.load(std::memory_order_relaxed));
            e = lt > 0.0 ? std::max(0.0, (lt - pt) / lt) : 0.0;
            break;
          }
          case EtaPolicy::kLinear:
            e = state_.num_vertices == 0 ? 0.0
                                         : 1.0 - placed_total / state_.num_vertices;
            break;
          case EtaPolicy::kConstant:
            e = state_.options.spnl.eta0;
            break;
          case EtaPolicy::kZero:
            e = 0.0;
            break;
        }
      }
      scores_[i] = lambda * ((1.0 - e) * physical_[i] + e * logical_[i]);
    }

    // Γ contributions read the shared window PLUS the worker's own
    // unpublished delta row (read-your-own-writes): at M=1 the sum equals
    // the eager total exactly — uint32 counts summed in uint64, one double
    // conversion, one multiply, so the float sequence is bit-identical to
    // the eager path. The delta row is only consulted for in-window ids,
    // mirroring publish()'s membership drop rule.
    if (state_.options.spnl.estimator == InNeighborEstimator::kSelf) {
      const std::uint32_t* drow =
          delta_ != nullptr && state_.gamma.contains(record.id)
              ? delta_->row(record.id)
              : nullptr;
      for (PartitionId i = 0; i < k; ++i) {
        const std::uint64_t g =
            static_cast<std::uint64_t>(state_.gamma.get(i, record.id)) +
            (drow != nullptr ? drow[i] : 0u);
        scores_[i] += (1.0 - lambda) * static_cast<double>(g);
      }
    } else {
      for (VertexId u : record.out) {
        const std::uint32_t* drow =
            delta_ != nullptr && state_.gamma.contains(u) ? delta_->row(u)
                                                          : nullptr;
        for (PartitionId i = 0; i < k; ++i) {
          const std::uint64_t g =
              static_cast<std::uint64_t>(state_.gamma.get(i, u)) +
              (drow != nullptr ? drow[i] : 0u);
          scores_[i] += (1.0 - lambda) * static_cast<double>(g);
        }
      }
    }

    return pick(k);
  }

  void commit(const OwnedVertexRecord& record, PartitionId pid) {
    {
      PerfScope t(perf_, PerfStage::kCommit);
      state_.route[record.id].store(pid, std::memory_order_relaxed);
      state_.loads[pid].vertices.fetch_add(1, std::memory_order_relaxed);
      state_.loads[pid].edges.fetch_add(record.out.size(), std::memory_order_relaxed);
      state_.placed_total.fetch_add(1, std::memory_order_relaxed);
      if (state_.options.use_locality) {
        const PartitionId lp = state_.logical.partition_of(record.id);
        state_.loads[lp].logical.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (!state_.hash_fallback.load(std::memory_order_relaxed)) {
      // No stashed row offsets here, unlike the sequential kernel: other
      // workers may slide the shared window between choose() and commit(),
      // so membership is re-checked by id — but batched over the record's
      // whole out-list (one base load, duplicate runs coalesced) instead of
      // one increment call per neighbor. (Hash fallback stops feeding the
      // window — the scores never read it again.) With a delta buffer the
      // increments stay worker-local and hit the shared array only at the
      // next publish.
      PerfScope t(perf_, PerfStage::kGammaIncrement);
      if (delta_ != nullptr) {
        state_.gamma.increment_many_buffered(pid, record.out, *delta_, perf_);
      } else {
        state_.gamma.increment_many(pid, record.out);
      }
    }
    {
      PerfScope t(perf_, PerfStage::kWindowAdvance);
      state_.gamma.advance_to(watermark_.mark_done(record.id, perf_), perf_);
    }
    // Epoch boundary: publish the delta so other workers see these counts.
    // Happens after the slide so the membership drop rule sees the newest
    // base (a retired row would be cleared by the slide an instant later
    // anyway — dropping it keeps publish idempotent with the eager path).
    if (delta_ != nullptr && epoch_records_ > 0 &&
        ++commits_since_publish_ >= epoch_records_) {
      commits_since_publish_ = 0;
      state_.gamma.publish(*delta_, perf_);
    }
    // The liveness signal the monitor watches: any commit proves progress,
    // including mid-chain commits of RCT-released records.
    if (watchdog_ != nullptr) watchdog_->heartbeat(index_);
  }

  /// Place a record and everything its placement releases from the RCT.
  void place_chain(OwnedVertexRecord record) {
    std::vector<OwnedVertexRecord> stack;
    stack.push_back(std::move(record));
    while (!stack.empty()) {
      OwnedVertexRecord current = std::move(stack.back());
      stack.pop_back();
      const PartitionId pid = choose(current, /*bump_rct=*/false);
      commit(current, pid);
      if (rct_ != nullptr) {
        auto released = rct_->on_placed(current.id, current.out);
        for (auto& r : released) stack.push_back(std::move(r));
      }
    }
  }

  void process(OwnedVertexRecord record) {
    if (rct_ == nullptr) {
      const PartitionId pid = choose(record, false);
      commit(record, pid);
      return;
    }
    const bool tracked = rct_->register_vertex(record.id);
    const PartitionId pid = choose(record, /*bump_rct=*/true);
    if (tracked && rct_->should_delay(record.id)) {
      // park() only consumes the record on success.
      if (rct_->park(std::move(record))) {
        state_.delayed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Parked set full: place immediately with the score already computed.
    }
    commit(record, pid);
    auto released = rct_->on_placed(record.id, record.out);
    for (auto& r : released) place_chain(std::move(r));
  }

 private:
  /// Capacity weight + argmax via the shared scoring kernel: one load
  /// snapshot per decision, then score_kernel's weigh_and_pick — the exact
  /// contract the sequential partitioners use (full partitions skipped, ties
  /// to lower load then lower id, all-full overflow to the least loaded).
  /// Snapshotting also fixes the old racy fallback, which re-read the live
  /// atomic loads mid-scan and could compare two different snapshots of the
  /// same partition; at M=1 the snapshot equals the live values, so routes
  /// are unchanged.
  PartitionId pick(PartitionId k) const {
    loads_.resize(k);
    for (PartitionId i = 0; i < k; ++i) loads_[i] = state_.load(i);
    return weigh_and_pick(std::span<double>(scores_.data(), k),
                          std::span<const double>(loads_.data(), k),
                          state_.capacity);
  }

  SharedState& state_;
  Rct* rct_;
  WatermarkTracker& watermark_;
  PerfStats* perf_;
  PipelineWatchdog* watchdog_;
  unsigned index_;
  GammaDeltaBuffer* delta_;
  std::uint64_t epoch_records_;
  std::uint64_t commits_since_publish_ = 0;
  mutable std::vector<double> physical_, logical_, scores_, loads_;
};

constexpr const char* kParTag = "par-driver";

/// Serializes the quiesced pipeline: stream cursor, configuration guards,
/// shared tables, Γ window and the parked RCT records. Callers must hold the
/// pipeline's exclusive lock (no worker mid-placement).
StateWriter snapshot_parallel(const SharedState& state, const Rct& rct,
                              std::uint32_t shards, std::uint64_t produced) {
  StateWriter out;
  out.put_string(kParTag);
  out.put_u64(produced);
  out.put_u32(state.num_vertices);
  out.put_u32(state.config.num_partitions);
  out.put_u32(static_cast<std::uint32_t>(state.config.balance));
  out.put_u32(shards);
  out.put_u32(state.options.use_rct ? 1 : 0);
  out.put_u32(state.options.use_locality ? 1 : 0);
  out.put_u32(static_cast<std::uint32_t>(state.options.spnl.estimator));
  out.put_u32(static_cast<std::uint32_t>(state.options.spnl.eta_policy));

  std::vector<PartitionId> route(state.num_vertices);
  for (VertexId v = 0; v < state.num_vertices; ++v) {
    route[v] = state.route[v].load(std::memory_order_relaxed);
  }
  out.put_vec(route);
  // Serialized as three flat vectors — the on-disk format predates the
  // cache-line-per-partition layout and must stay byte-compatible.
  const PartitionId k = state.config.num_partitions;
  std::vector<std::uint64_t> counts(k);
  for (PartitionId i = 0; i < k; ++i) counts[i] = state.loads[i].vertices.load();
  out.put_vec(counts);
  for (PartitionId i = 0; i < k; ++i) counts[i] = state.loads[i].edges.load();
  out.put_vec(counts);
  for (PartitionId i = 0; i < k; ++i) counts[i] = state.loads[i].logical.load();
  out.put_vec(counts);
  out.put_u64(state.placed_total.load());
  out.put_u64(state.delayed.load());
  out.put_u64(state.forced.load());
  out.put_u32(state.hash_fallback.load(std::memory_order_relaxed) ? 1 : 0);
  state.gamma.save(out);

  const auto parked = rct.snapshot_parked();
  out.put_u64(parked.size());
  for (const auto& p : parked) {
    out.put_u32(p.id);
    out.put_u32(p.counter);
    out.put_vec(p.out);
  }
  return out;
}

/// Restores a snapshot into freshly constructed pipeline state; returns the
/// stream cursor (records already consumed by the checkpointed run).
std::uint64_t restore_parallel(const std::string& path, SharedState& state, Rct& rct,
                               WatermarkTracker& watermark, std::uint32_t shards) {
  StateReader in = read_checkpoint_file(path);
  in.expect_string(kParTag, "driver kind");
  const std::uint64_t produced = in.get_u64();
  in.expect_u32(state.num_vertices, "vertex count");
  in.expect_u32(state.config.num_partitions, "partition count");
  in.expect_u32(static_cast<std::uint32_t>(state.config.balance), "balance mode");
  in.expect_u32(shards, "gamma shard count");
  in.expect_u32(state.options.use_rct ? 1 : 0, "use_rct");
  in.expect_u32(state.options.use_locality ? 1 : 0, "use_locality");
  in.expect_u32(static_cast<std::uint32_t>(state.options.spnl.estimator), "estimator");
  in.expect_u32(static_cast<std::uint32_t>(state.options.spnl.eta_policy),
                "eta policy");

  const auto route = in.get_vec<PartitionId>();
  const auto vertex_counts = in.get_vec<std::uint64_t>();
  const auto edge_counts = in.get_vec<std::uint64_t>();
  const auto logical_counts = in.get_vec<std::uint64_t>();
  const PartitionId k = state.config.num_partitions;
  if (route.size() != state.num_vertices || vertex_counts.size() != k ||
      edge_counts.size() != k || logical_counts.size() != k) {
    throw CheckpointError("run_parallel: snapshot table sizes do not match");
  }
  for (VertexId v = 0; v < state.num_vertices; ++v) {
    state.route[v].store(route[v], std::memory_order_relaxed);
  }
  for (PartitionId i = 0; i < k; ++i) {
    state.loads[i].vertices.store(vertex_counts[i], std::memory_order_relaxed);
    state.loads[i].edges.store(edge_counts[i], std::memory_order_relaxed);
    state.loads[i].logical.store(logical_counts[i], std::memory_order_relaxed);
  }
  state.placed_total.store(in.get_u64(), std::memory_order_relaxed);
  state.delayed.store(in.get_u64(), std::memory_order_relaxed);
  state.forced.store(in.get_u64(), std::memory_order_relaxed);
  state.hash_fallback.store(in.get_u32() != 0, std::memory_order_relaxed);
  state.gamma.restore(in);

  const std::uint64_t parked_count = in.get_u64();
  std::vector<Rct::ParkedState> parked;
  parked.reserve(parked_count);
  for (std::uint64_t i = 0; i < parked_count; ++i) {
    Rct::ParkedState p;
    p.id = in.get_u32();
    p.counter = in.get_u32();
    p.out = in.get_vec<VertexId>();
    parked.push_back(std::move(p));
  }
  if (!parked.empty() && !state.options.use_rct) {
    throw CheckpointError("run_parallel: snapshot has parked records but RCT is off");
  }
  rct.restore_parked(std::move(parked));

  // Rebuild the completion low-watermark by replaying placed ids in
  // increasing order — the same marks the live run would have set.
  for (VertexId v = 0; v < state.num_vertices; ++v) {
    if (route[v] != kUnassigned) watermark.mark_done(v);
  }
  return produced;
}

}  // namespace

std::size_t validated_batch_size(std::int64_t requested, std::size_t queue_capacity) {
  if (requested < 1) {
    throw std::invalid_argument("batch size must be >= 1 (got " +
                                std::to_string(requested) + ")");
  }
  return std::min(static_cast<std::size_t>(requested),
                  std::max<std::size_t>(queue_capacity, 1));
}

ParallelRunResult run_parallel(AdjacencyStream& stream, const PartitionConfig& config,
                               const ParallelOptions& options) {
  if (options.num_threads == 0) {
    throw std::invalid_argument("run_parallel: need at least one worker");
  }
  const std::size_t batch_size = validated_batch_size(
      options.batch_size > static_cast<std::size_t>(
                               std::numeric_limits<std::int64_t>::max())
          ? std::numeric_limits<std::int64_t>::max()
          : static_cast<std::int64_t>(options.batch_size),
      options.queue_capacity);
  const VertexId n = stream.num_vertices();
  const EdgeId m = stream.num_edges();
  const std::uint32_t shards =
      options.spnl.num_shards == 0
          ? GammaWindow::recommended_shards(n, config.num_partitions)
          : options.spnl.num_shards;

  SharedState state(n, m, config, options, shards);
  const std::uint32_t rct_shards = Rct::recommended_shards(options.num_threads);
  // ε·M entries total — the paper's sizing. Admission is global and shard
  // tables grow on demand, so no per-stripe floor is needed; an undersized ε
  // genuinely refuses registrations (surfaced as untracked_overflow).
  const auto rct_capacity = std::max<std::size_t>(
      static_cast<std::size_t>(std::ceil(options.epsilon * options.num_threads)),
      1);
  const bool lock_free = options.hot_path == HotPathMode::kLockFree;
  Rct rct(rct_capacity, rct_shards,
          lock_free ? RctMode::kLockFree : RctMode::kStriped);
  Rct* rct_ptr = options.use_rct ? &rct : nullptr;
  // The watermark ring must span the maximum in-flight id spread: the queue,
  // every worker's popped-but-unprocessed local batch, and the parked RCT
  // records.
  WatermarkTracker watermark(options.queue_capacity + rct_capacity +
                                 options.num_threads * batch_size + 16,
                             lock_free);
  BoundedQueue<OwnedVertexRecord> queue(options.queue_capacity);
  // Queue-lock contention accounting rides the same opt-in as the rest of
  // the instrumentation: no sink, no clock reads on the queue path.
  QueueStats queue_stats;
  if (options.perf != nullptr) queue.set_stats(&queue_stats);
  // Per-worker epoch-local Γ delta buffers, owned here (not by the worker
  // lambdas) so the quiesce path can drain them ALL in worker-index order —
  // that fixed order is what makes quiesce-point merges deterministic and
  // checkpoints byte-identical regardless of which worker held what.
  std::vector<GammaDeltaBuffer> deltas;
  if (lock_free) {
    deltas.reserve(options.num_threads);
    for (unsigned t = 0; t < options.num_threads; ++t) {
      deltas.emplace_back(config.num_partitions,
                          std::max<std::size_t>(options.gamma_delta_rows, 1));
    }
  }
  // Everything workers record lands here first (merged under a mutex after
  // each worker's loop); options.perf receives one copy at the end. Keeping
  // an internal sink lets the driver surface the contention counters in the
  // result without double-counting a caller-reused sink.
  PerfStats internal_perf;

  Checkpointer checkpointer(options.checkpoint_path, options.checkpoint_every);
  std::uint64_t resumed_at = 0;
  if (!options.resume_from.empty()) {
    resumed_at = restore_parallel(options.resume_from, state, rct, watermark, shards);
    // Fast-forward past the committed prefix; those records' placements are
    // already in the restored route (parked ones re-park from the snapshot).
    for (std::uint64_t i = 0; i < resumed_at; ++i) {
      if (!stream.next()) {
        throw CheckpointError(
            "run_parallel: stream ended before the snapshot cursor (" +
            std::to_string(resumed_at) + " records)");
      }
    }
  }

  // Workers hold the pipeline lock shared for the span of each placement;
  // the producer takes it exclusively to quiesce for a snapshot or a
  // governor ladder step. A record popped but not yet locked is detected by
  // the accounting check below (committed + parked < produced), so a quiesce
  // can never observe a half-applied placement.
  std::shared_mutex pipeline_mutex;
  std::uint64_t produced = resumed_at;

  // Injected allocation pressure: touched so the pages are resident and the
  // governor's RSS sample actually sees them.
  std::vector<char> ballast(options.faults.ballast_bytes, 0);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 1;

  // Watchdog + monitor-thread rescue path. The rescuer bypasses the RCT: a
  // stolen record was taken before its worker registered it anywhere, so a
  // plain choose+commit under the shared pipeline lock is the complete
  // placement. The monitor is a single thread, so the rescuer needs no
  // further synchronization.
  Worker rescuer(state, nullptr, watermark);
  std::optional<PipelineWatchdog> watchdog;
  PipelineWatchdog* wd = nullptr;
  if (options.watchdog_timeout_seconds > 0.0) {
    watchdog.emplace(
        options.num_threads,
        PipelineWatchdog::Options{options.watchdog_timeout_seconds,
                                  options.watchdog_poll_seconds},
        [&](unsigned, OwnedVertexRecord record) {
          std::shared_lock lock(pipeline_mutex);
          const PartitionId pid = rescuer.choose(record, /*bump_rct=*/false);
          rescuer.commit(record, pid);
        },
        [&] { queue.abort(); });
    wd = &*watchdog;
    wd->start();
  }

  // Run `fn` with the pipeline quiesced (exclusive lock, every produced
  // record committed or parked). Returns false without running fn if the
  // pipeline aborted while waiting — a wedged worker would otherwise spin
  // this loop forever.
  // Producer-thread-only sink for the quiesce-point delta merges (workers
  // own their own locals; sharing internal_perf here could race a worker's
  // exit merge on the abort path).
  PerfStats quiesce_perf;
  auto quiesce = [&](const std::function<void()>& fn) -> bool {
    for (;;) {
      if (wd != nullptr && wd->aborted()) return false;
      {
        std::unique_lock lock(pipeline_mutex);
        const std::uint64_t accounted =
            state.placed_total.load(std::memory_order_acquire) + rct.parked_size();
        if (accounted == produced) {
          // Drain every epoch-local Γ delta in WORKER-INDEX ORDER before fn
          // sees the state: snapshots carry the full counts (resume is then
          // byte-identical) and the governor's footprint/shrink decisions
          // act on merged truth. The fixed order makes quiesce merges
          // deterministic; workers are excluded by the exclusive lock.
          for (auto& delta : deltas) {
            state.gamma.publish(
                delta, options.perf != nullptr ? &quiesce_perf : nullptr);
          }
          fn();
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  // The governor's MC sample: every byte the parallel partitioner itself
  // holds (Γ window, route, load counters, RCT) plus the input stream's own
  // heap buffers (mmap-backed streams report only their decode buffers — the
  // mapping is clean file-backed memory the kernel can reclaim).
  auto pipeline_bytes = [&]() -> std::size_t {
    return state.gamma.memory_footprint_bytes() +
           state.route.size() * sizeof(std::atomic<PartitionId>) +
           state.loads.size() * sizeof(PartitionLoad) +
           rct.memory_footprint_bytes() + stream.memory_footprint_bytes();
  };

  ResourceGovernor* governor = options.governor;

  // One rung against the quiesced shared state (callers hold the exclusive
  // pipeline lock — ConcurrentGammaWindow::shrink_to reallocates). Coarse
  // slide has no meaning for the watermark-driven concurrent window, so that
  // rung reports false and the ladder skips to hash fallback.
  auto apply_stage = [&](DegradationStage stage) -> bool {
    switch (stage) {
      case DegradationStage::kShrinkWindow: {
        const VertexId w = state.gamma.window_size();
        if (w <= 1) return false;
        state.gamma.shrink_to(w / 2);
        return true;
      }
      case DegradationStage::kCoarseSlide:
        return false;
      case DegradationStage::kHashFallback:
        if (state.hash_fallback.load(std::memory_order_relaxed)) return false;
        state.hash_fallback.store(true, std::memory_order_relaxed);
        state.gamma.shrink_to(1);
        return true;
      case DegradationStage::kNone:
        break;
    }
    return false;
  };

  auto step_ladder = [&](const ResourceGovernor::Breach& breach,
                         const char* reason, bool repeat_current) -> bool {
    DegradationStage stage = governor->stage();
    if (stage == DegradationStage::kNone || !repeat_current) {
      stage = ResourceGovernor::next_stage(stage);
      if (stage == DegradationStage::kNone) {
        governor->mark_exhausted();
        return false;
      }
    }
    bool applied = apply_stage(stage);
    while (!applied) {
      stage = ResourceGovernor::next_stage(stage);
      if (stage == DegradationStage::kNone) {
        governor->mark_exhausted();
        return false;
      }
      applied = apply_stage(stage);
    }
    DegradationEvent event;
    event.stage = stage;
    event.at_placement = produced;
    event.partitioner_bytes = breach.partitioner_bytes;
    event.post_bytes = pipeline_bytes();
    event.rss_bytes = breach.rss_bytes;
    event.budget_bytes = governor->options().memory_budget_bytes;
    event.elapsed_seconds = breach.elapsed_seconds;
    event.reason = reason;
    governor->record_event(std::move(event));
    return true;
  };

  // Producer-side budget enforcement; mirrors the sequential driver's
  // policy (memory: step within this sample until back under budget;
  // deadline: one rung per sample).
  auto govern = [&] {
    const auto breach = governor->sample(pipeline_bytes());
    if (!breach || governor->options().policy != DegradePolicy::kLadder ||
        governor->exhausted()) {
      return;
    }
    quiesce([&] {
      if (breach->over_memory) {
        ResourceGovernor::Breach current = *breach;
        while (governor->over_memory_budget(current.partitioner_bytes)) {
          if (!step_ladder(current, "memory", /*repeat_current=*/true)) break;
          current.partitioner_bytes = pipeline_bytes();
        }
      } else if (breach->over_deadline) {
        step_ladder(*breach, "deadline", /*repeat_current=*/false);
      }
    });
  };

  Timer timer;
  std::exception_ptr producer_error;
  std::thread producer([&] {
    try {
      // Micro-batched handoff: records accumulate locally and cross the
      // queue batch_size at a time, so the mutex/condvar round-trip is paid
      // once per batch instead of once per record. Governor sampling and
      // checkpoint cadence switch to the crossing-aware due(prev, now) —
      // `produced` now advances in batch-sized jumps that can step over an
      // exact multiple of the interval.
      std::vector<OwnedVertexRecord> pending;
      pending.reserve(batch_size);
      bool open = true;
      auto flush = [&]() -> bool {
        if (pending.empty()) return true;
        const std::uint64_t count = pending.size();
        if (wd == nullptr) {
          if (!queue.push_batch(pending)) return false;
        } else {
          // Timed pushes so a dead pipeline surfaces as an abort instead of
          // blocking the producer on a full queue forever.
          bool pushed = false;
          while (!pushed && !wd->aborted() && !queue.finished()) {
            pushed = queue.push_batch_for(pending, std::chrono::milliseconds(100));
          }
          if (!pushed) return false;
        }
        const std::uint64_t prev = produced;
        produced += count;
        if (governor != nullptr && governor->enabled() &&
            governor->due(prev, produced)) {
          govern();
        }
        if (checkpointer.due(prev, produced)) {
          quiesce([&] {
            checkpointer.write(snapshot_parallel(state, rct, shards, produced));
          });
        }
        return true;
      };
      while (auto record = stream.next()) {
        pending.push_back(OwnedVertexRecord::from(*record));
        if (pending.size() >= batch_size && !flush()) {
          open = false;
          break;
        }
      }
      if (open) flush();  // drain: the partial tail batch
    } catch (...) {
      // BudgetExceededError under DegradePolicy::kAbort (or a stream error):
      // park it for the joining thread, shut the pipeline down cleanly.
      producer_error = std::current_exception();
    }
    queue.close();
  });

  std::vector<std::thread> workers;
  workers.reserve(options.num_threads);
  std::mutex perf_merge_mutex;
  for (unsigned t = 0; t < options.num_threads; ++t) {
    workers.emplace_back([&, t] {
      // PerfStats is not thread-safe: each worker accumulates into a private
      // instance and merges it into the shared sink once, after its loop.
      PerfStats local_perf;
      PerfStats* perf = options.perf != nullptr ? &local_perf : nullptr;
      GammaDeltaBuffer* delta = lock_free ? &deltas[t] : nullptr;
      Worker worker(state, rct_ptr, watermark, perf, wd, t, delta,
                    options.gamma_epoch_records);
      std::uint64_t pops = 0;
      // Whole batches cross the queue; everything below the pop — fault
      // injection, watchdog publish/claim/steal, the shared-lock placement —
      // still runs per record, so batching never widens the window a quiesce
      // or a steal has to reason about.
      std::vector<OwnedVertexRecord> batch;
      batch.reserve(batch_size);
      for (;;) {
        std::size_t got;
        {
          PerfScope wait(perf, PerfStage::kQueueWait);
          got = queue.pop_batch(batch, batch_size);
        }
        if (got == 0) break;
        for (OwnedVertexRecord& record : batch) {
          // An abort drops the rest of the local batch, mirroring how
          // BoundedQueue::abort discards undelivered items.
          if (wd != nullptr && wd->aborted()) break;
          ++pops;

          // Injected stragglers, deterministic by pop index.
          for (const auto& f : options.faults.slow) {
            if (f.worker == t && f.delay_seconds > 0.0 && f.every > 0 &&
                pops % f.every == 0) {
              std::this_thread::sleep_for(
                  std::chrono::duration<double>(f.delay_seconds));
            }
          }
          const StuckWorkerFault* stuck = nullptr;
          for (const auto& f : options.faults.stuck) {
            if (f.worker == t && f.at_pop == pops) stuck = &f;
          }

          if (wd != nullptr) {
            wd->publish(t, record);
            if (stuck != nullptr && !stuck->in_processing) {
              // Transient freeze between publish and claim: the monitor
              // steals and rescues the record, then this worker resumes.
              wd->wait_until_stolen(t, stuck->max_stall_seconds);
            }
            if (!wd->claim(t)) continue;  // stolen — the monitor owns it now
          } else if (stuck != nullptr) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(stuck->max_stall_seconds));
          }
          {
            std::shared_lock lock(pipeline_mutex);
            if (wd != nullptr && stuck != nullptr && stuck->in_processing) {
              // Wedge inside the placement: unstealable; with every worker
              // wedged this way the monitor aborts the pipeline, which is
              // what wakes this wait.
              wd->wait_until_aborted(stuck->max_stall_seconds);
            }
            worker.process(std::move(record));
          }
          if (wd != nullptr) wd->complete(t);
        }
      }
      // Exit drain: whatever the final partial epoch buffered becomes
      // visible before the force-place/finisher phase reads the window.
      // Never concurrent with a quiesce drain of the same buffer — the
      // producer only quiesces before close(), and this worker only exits
      // after close() (or after an abort, which ends quiescing too).
      if (delta != nullptr) state.gamma.publish(*delta, perf);
      if (perf != nullptr) {
        std::lock_guard lock(perf_merge_mutex);
        internal_perf.merge(local_perf);
      }
    });
  }
  producer.join();
  for (auto& w : workers) w.join();
  if (wd != nullptr) wd->stop();
  if (producer_error) std::rethrow_exception(producer_error);

  // Cyclically-parked leftovers: force-place in id order. Single-threaded by
  // now (every worker has exited and published its delta), so the internal
  // sink can be used directly. Runs on the abort path too — parked records
  // should not punch extra holes in the partial route.
  if (options.use_rct) {
    Worker finisher(state, rct_ptr, watermark,
                    options.perf != nullptr ? &internal_perf : nullptr);
    auto rest = rct.drain_parked();
    state.forced.fetch_add(rest.size(), std::memory_order_relaxed);
    for (auto& record : rest) {
      const PartitionId pid = finisher.choose(record, false);
      finisher.commit(record, pid);
    }
  }

  // Fold the side tallies together and hand the caller one merged view.
  if (options.perf != nullptr) {
    internal_perf.merge(quiesce_perf);
    queue_stats.merge_into(internal_perf);
  }
  rct.merge_contention_into(internal_perf);
  if (options.perf != nullptr) options.perf->merge(internal_perf);

  ParallelRunResult result;
  result.partition_seconds = timer.seconds();
  result.route.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.route[v] = state.route[v].load(std::memory_order_relaxed);
  }
  result.peak_partitioner_bytes =
      std::max(pipeline_bytes(),
               governor != nullptr ? governor->peak_partitioner_bytes() : 0);
  result.delayed_vertices = state.delayed.load();
  result.untracked_overflow = options.use_rct ? rct.untracked_overflow() : 0;
  result.forced_vertices = state.forced.load();
  result.checkpoints_written = checkpointer.snapshots_taken();
  result.resumed_at = resumed_at;
  if (wd != nullptr) {
    result.stalled_workers = wd->stalled_workers();
    result.rescued_records = wd->rescued_records();
    result.aborted = wd->aborted();
    result.abort_reason = wd->abort_reason();
  }
  if (governor != nullptr) result.degradations = governor->events();
  {
    ContentionReport& c = result.contention;
    c.rct_shared_contended = rct.shared_contended();
    c.rct_exclusive_contended = rct.exclusive_contended();
    c.rct_exclusive_acquires = rct.exclusive_acquires();
    c.rct_claim_cas_retries = rct.claim_cas_retries();
    c.rct_decrement_cas_retries = rct.decrement_cas_retries();
    c.queue_lock_contended = internal_perf.count(PerfCounter::kQueueLockContended);
    c.queue_lock_acquires = internal_perf.count(PerfCounter::kQueueLockAcquires);
    c.queue_lock_wait_nanos = internal_perf.nanos(PerfStage::kQueueLockWait);
    c.queue_lock_hold_nanos = internal_perf.nanos(PerfStage::kQueueLockHold);
    c.gamma_delta_publishes = internal_perf.count(PerfCounter::kGammaDeltaPublishes);
    c.gamma_delta_cells = internal_perf.count(PerfCounter::kGammaDeltaCells);
    c.gamma_delta_dropped = internal_perf.count(PerfCounter::kGammaDeltaDropped);
    c.gamma_head_cas_retries = internal_perf.count(PerfCounter::kGammaHeadCasRetries);
    c.gamma_advance_contended =
        internal_perf.count(PerfCounter::kGammaAdvanceContended);
    c.watermark_cas_retries = internal_perf.count(PerfCounter::kWatermarkCasRetries);
  }
  if (result.aborted) {
    const std::string reason = result.abort_reason;
    throw StreamAborted("run_parallel aborted: " + reason, std::move(result));
  }
  return result;
}

}  // namespace spnl
