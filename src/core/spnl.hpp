// SPNL — SPN plus topology Locality (paper Sec. IV-C).
//
// Before streaming, all vertices are logically pre-assigned by contiguous id
// ranges (O(2K) lookup table; valid because crawl-ordered graphs embed
// topology locality in the numbering). The placement score (Eq. 6) blends
// the physically-placed out-neighbor distribution with the logical one:
//
//   pid = argmax_i w_t(i,v) · ( (1−λ)·Γ_i(v)
//           + λ·( (1−η_i^t)·|V_i^pt ∩ N_out(v)| + η_i^t·|V_i^lt ∩ N_out(v)| ) )
//
// where the decay η_i^t = max{0, (|V_i^lt| − |V_i^pt|)/|V_i^lt|} trusts the
// logical guess early (few physical placements) and fades as real placements
// accumulate. A vertex leaves V_i^lt the moment it is physically placed.
//
// Multigraph semantics match SPN (see spn.hpp): parallel edges count with
// multiplicity in the physical, logical and Γ terms; self-loops contribute a
// logical-table vote at scoring time (v is unplaced, so the self-edge falls
// into the |V_i^lt ∩ N_out(v)| term of its own logical partition) and an
// inert Γ_pid(v) increment after placement.
#pragma once

#include <cstdint>

#include "core/gamma_table.hpp"
#include "core/spn.hpp"
#include "partition/partitioning.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {

/// Decay policy for η (the paper fixes one and leaves others as future work;
/// bench_ablation compares them).
enum class EtaPolicy {
  kPaper,      ///< max{0, (|V_lt| - |V_pt|)/|V_lt|}
  kLinear,     ///< 1 - (placed vertices)/|V| (global linear decay)
  kConstant,   ///< fixed eta0
  kZero,       ///< ignore logical table entirely (degrades SPNL to SPN)
};

struct SpnlOptions {
  double lambda = 0.5;
  std::uint32_t num_shards = 0;  ///< 0 = paper recommendation, 1 = full table
  InNeighborEstimator estimator = InNeighborEstimator::kSelf;
  /// Window slide granularity; kCoarse reproduces the paper's rejected
  /// shard-by-shard design for the ablation.
  SlideMode slide = SlideMode::kFine;
  EtaPolicy eta_policy = EtaPolicy::kPaper;
  double eta0 = 0.5;  ///< only for kConstant
  /// Optional per-vertex logical pre-assignment replacing the contiguous
  /// range table in Eq. 6 (the 2PS clustering prepass feeds cluster-derived
  /// placement hints through here — see prepass/two_phase.hpp). Borrowed:
  /// must outlive the partitioner, have size |V|, and every value < K.
  /// Trades the paper's O(2K) logical table for an O(|V|) one, which is
  /// charged to memory_footprint_bytes; nullptr keeps the paper behavior. A
  /// checkpointed run must be restored with the same hint table it was
  /// constructed with (the prepass is deterministic, so re-running it
  /// reproduces the table).
  const std::vector<PartitionId>* logical_hints = nullptr;
};

class SpnlPartitioner final : public GreedyStreamingBase {
 public:
  SpnlPartitioner(VertexId num_vertices, EdgeId num_edges,
                  const PartitionConfig& config, SpnlOptions options = {});

  PartitionId place(VertexId v, std::span<const VertexId> out) override;
  std::string name() const override { return "SPNL"; }
  std::size_t memory_footprint_bytes() const override;
  void save_state(StateWriter& out) const override;
  void restore_state(StateReader& in) override;

  /// Degradation ladder — see SpnPartitioner::apply_degradation. SPNL's
  /// logical table is O(2K) and never degraded; the rungs act on the Γ
  /// window and, at the last rung, replace Eq. 6 scoring with a
  /// capacity-weighted hash.
  bool apply_degradation(DegradationStage stage) override;
  DegradationStage degradation_stage() const override { return stage_; }

  const GammaWindow& gamma() const { return gamma_; }
  const RangeTable& logical_table() const { return logical_; }

  /// Current η for partition i (exposed for tests).
  double eta(PartitionId i) const;

  /// Logical pre-assignment of v: the hint table when one was injected, the
  /// contiguous range table otherwise (exposed for tests).
  PartitionId logical_partition_of(VertexId v) const {
    return options_.logical_hints != nullptr ? (*options_.logical_hints)[v]
                                             : logical_.partition_of(v);
  }

 private:
  SpnlOptions options_;
  GammaWindow gamma_;
  RangeTable logical_;
  /// |V_i^lt|: logical members not yet physically placed (anywhere).
  std::vector<VertexId> logical_counts_;
  VertexId placed_total_ = 0;
  /// Fused-kernel scratch (loads snapshot + stashed Γ row offsets) and the
  /// per-partition physical/logical out-neighbor tallies, reused across
  /// place() calls (previously function-local thread_local buffers).
  ScoreKernelScratch scratch_;
  std::vector<double> physical_;
  std::vector<double> logical_hits_;
  /// Deepest degradation rung applied (persisted across checkpoints).
  DegradationStage stage_ = DegradationStage::kNone;
  bool hash_fallback_ = false;
};

}  // namespace spnl
