// Γ expectation tables with the fine-grained sliding window (paper Sec. IV-B
// and V-A).
//
// Γ_i(u) counts how many vertices already placed into partition P_i have an
// out-edge to u — i.e. exactly |V_i^pt ∩ N_in(u)|, the placed-in-neighbor
// count of u. A full table costs O(K|V|). Because already-placed vertices
// never need their counter again and streaming is in id order, only a window
// of W = ceil(|V|/X) upcoming ids [base, base+W) keeps counters; the window
// slides one vertex at a time (fine-grained, Fig. 5) over a rotating array.
// X = 1 degenerates to the exact full table.
//
// Layout is slot-major (W rows of K counters): reading all K counters of one
// vertex — the hot operation when scoring an arrival — is one contiguous
// cache run, and retiring a slot is one contiguous clear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/checkpoint.hpp"
#include "graph/types.hpp"

namespace spnl {

/// Sliding granularity (Sec. V-A): the paper rejects coarse shard-by-shard
/// sliding because the sharp jump loses boundary-vertex expectations; the
/// coarse mode is kept for the ablation that reproduces this claim.
enum class SlideMode {
  kFine,    ///< slide one vertex at a time (the paper's design)
  kCoarse,  ///< jump a whole shard when the head leaves the current shard
};

class GammaWindow {
 public:
  /// num_shards is the paper's X >= 1. The window size is ceil(n/X),
  /// clamped to at least 1.
  GammaWindow(VertexId num_vertices, PartitionId num_partitions,
              std::uint32_t num_shards, SlideMode mode = SlideMode::kFine);

  /// The paper's recommended shard count X = min{αK, |V|/(βK)} with α=4,
  /// β=10^4 (Sec. VI-B), clamped to >= 1.
  static std::uint32_t recommended_shards(VertexId num_vertices, PartitionId k,
                                          double alpha = 4.0, double beta = 1e4);

  /// Slide the window forward for the arriving vertex `head`. Fine mode
  /// starts the window exactly at `head`; coarse mode keeps the window
  /// aligned to shard boundaries and jumps a whole shard at a time (so
  /// `head`'s own row can be discarded mid-shard — the accuracy loss the
  /// paper describes). Counters of retired ids are discarded; slots that
  /// wrap around to future ids are zeroed. Never moves backwards.
  ///
  /// The fine-mode steady state — every arrival retires exactly one row —
  /// is inlined here so the in-order place() path pays a short clear loop
  /// instead of a cross-TU call + memset. (With W == 1 the single row is the
  /// whole table, so the fast path is still exact.)
  void advance_to(VertexId head) {
    if (mode_ == SlideMode::kFine && head == base_ + 1) {
      std::uint32_t* row =
          counters_.data() + static_cast<std::size_t>(base_slot_) * num_partitions_;
      for (PartitionId i = 0; i < num_partitions_; ++i) row[i] = 0;
      base_ = head;
      if (++base_slot_ == window_size_) base_slot_ = 0;
      return;
    }
    advance_general(head);
  }

  /// Γ_p(u) += 1 if u is inside the window; silently dropped otherwise —
  /// exactly the accuracy/memory trade-off of Fig. 5.
  void increment(PartitionId p, VertexId u) {
    if (contains(u)) ++counters_[slot_of(u) * num_partitions_ + p];
  }

  /// Γ_p(u), 0 if outside the window.
  std::uint32_t get(PartitionId p, VertexId u) const {
    return contains(u) ? counters_[slot_of(u) * num_partitions_ + p] : 0;
  }

  /// All K counters of u as a contiguous span; empty span if outside the
  /// window (callers treat it as all-zeros).
  std::span<const std::uint32_t> row(VertexId u) const {
    if (!contains(u)) return {};
    return {counters_.data() + static_cast<std::size_t>(slot_of(u)) * num_partitions_,
            num_partitions_};
  }

  bool contains(VertexId u) const {
    return u >= base_ &&
           static_cast<std::uint64_t>(u) <
               static_cast<std::uint64_t>(base_) + window_size_;
  }

  // Raw-row access for the fused scoring kernel (core/score_kernel.hpp): the
  // kernel computes contains() + the slot once per out-neighbor during the
  // scoring pass and reuses the offset for both the kNeighborSum row read
  // and the post-commit increment. Offsets are valid only while the window
  // does not advance (the sequential place() path holds that invariant).

  /// Offset of u's K-counter row in data(); caller must check contains(u).
  /// For an in-window u the ring slot is base_slot_ + (u - base_) wrapped
  /// once at W — an add and a compare instead of slot_of()'s hardware divide
  /// (W is a runtime value, so u % W costs ~20 cycles on the hot path).
  std::size_t row_offset(VertexId u) const {
    std::uint64_t slot = std::uint64_t{base_slot_} + (u - base_);
    if (slot >= window_size_) slot -= window_size_;
    return static_cast<std::size_t>(slot) * num_partitions_;
  }

  const std::uint32_t* data() const { return counters_.data(); }

  /// Γ_p += 1 at a row offset previously obtained from row_offset().
  void increment_at(std::size_t row_offset, PartitionId p) {
    ++counters_[row_offset + p];
  }

  VertexId base() const { return base_; }
  VertexId window_size() const { return window_size_; }
  std::uint32_t num_shards() const { return num_shards_; }
  SlideMode slide_mode() const { return mode_; }

  /// Resource-governor degradation: shrink the window to `new_window` rows,
  /// keeping the counters of the ids still covered ([base, base+new_window))
  /// and discarding the tail — the same accuracy/memory trade-off as a
  /// larger X, applied mid-stream. The backing storage is reallocated so the
  /// footprint actually drops. No-op when new_window >= current size.
  void shrink_to(VertexId new_window);

  /// Degradation rung 2: switch the slide granularity mid-stream (fine ->
  /// coarse trades boundary-vertex accuracy for cheaper bookkeeping).
  void set_slide_mode(SlideMode mode) { mode_ = mode; }

  std::size_t memory_footprint_bytes() const;

  /// Checkpoint the window (configuration guards + base + counters) /
  /// restore. A snapshot taken after governor degradation (smaller window,
  /// coarse mode) restores into a fresh full-size window by shrinking and
  /// re-moding it first; a snapshot LARGER than the current window is a
  /// configuration mismatch and throws.
  void save(StateWriter& out) const;
  void restore(StateReader& in);

 private:
  VertexId slot_of(VertexId u) const { return u % window_size_; }

  /// Multi-step / coarse-mode slide: at most two contiguous memset ranges.
  void advance_general(VertexId head);

  VertexId num_vertices_;
  PartitionId num_partitions_;
  std::uint32_t num_shards_;
  SlideMode mode_;
  VertexId window_size_;
  VertexId base_ = 0;
  /// slot_of(base_), maintained by advance_to/restore so row_offset() never
  /// divides.
  VertexId base_slot_ = 0;
  std::vector<std::uint32_t> counters_;  // window_size_ x num_partitions_
};

}  // namespace spnl
