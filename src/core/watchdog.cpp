#include "core/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace spnl {

PipelineWatchdog::PipelineWatchdog(unsigned num_workers, const Options& options,
                                   RescueFn rescue, AbortFn on_abort)
    : options_(options),
      rescue_(std::move(rescue)),
      on_abort_(std::move(on_abort)),
      slots_(std::max(num_workers, 1u)) {
  const std::int64_t now = now_nanos();
  for (auto& slot : slots_) {
    slot.heartbeat_nanos.store(now, std::memory_order_relaxed);
  }
}

PipelineWatchdog::~PipelineWatchdog() { stop(); }

std::int64_t PipelineWatchdog::now_nanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PipelineWatchdog::start() {
  if (options_.timeout_seconds <= 0.0) return;  // monitoring disabled
  if (started_.exchange(true)) return;
  stop_.store(false, std::memory_order_release);
  monitor_ = std::thread([this] { monitor_loop(); });
}

void PipelineWatchdog::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  started_.store(false, std::memory_order_release);
}

void PipelineWatchdog::heartbeat(unsigned worker) {
  slots_[worker].heartbeat_nanos.store(now_nanos(), std::memory_order_release);
}

void PipelineWatchdog::publish(unsigned worker, const OwnedVertexRecord& record) {
  Slot& slot = slots_[worker];
  {
    std::lock_guard lock(slot.record_mutex);
    slot.record = record;  // copy: the worker keeps its own to process
  }
  slot.heartbeat_nanos.store(now_nanos(), std::memory_order_release);
  slot.state.store(kPublished, std::memory_order_release);
}

bool PipelineWatchdog::claim(unsigned worker) {
  Slot& slot = slots_[worker];
  slot.heartbeat_nanos.store(now_nanos(), std::memory_order_release);
  std::uint8_t expected = kPublished;
  if (slot.state.compare_exchange_strong(expected, kProcessing,
                                         std::memory_order_acq_rel)) {
    return true;
  }
  // Lost to the monitor: the rescue owns the record now. Reset the slot so
  // the worker can publish its next pop.
  {
    std::lock_guard lock(slot.record_mutex);
    slot.record.reset();
  }
  slot.state.store(kIdle, std::memory_order_release);
  return false;
}

void PipelineWatchdog::complete(unsigned worker) {
  Slot& slot = slots_[worker];
  {
    std::lock_guard lock(slot.record_mutex);
    slot.record.reset();
  }
  slot.heartbeat_nanos.store(now_nanos(), std::memory_order_release);
  slot.state.store(kIdle, std::memory_order_release);
}

bool PipelineWatchdog::wait_until_stolen(unsigned worker, double max_seconds) const {
  const Slot& slot = slots_[worker];
  const std::int64_t deadline =
      now_nanos() + static_cast<std::int64_t>(max_seconds * 1e9);
  for (;;) {
    if (slot.state.load(std::memory_order_acquire) == kStolen) return true;
    if (aborted() || now_nanos() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool PipelineWatchdog::wait_until_aborted(double max_seconds) const {
  const std::int64_t deadline =
      now_nanos() + static_cast<std::int64_t>(max_seconds * 1e9);
  while (!aborted() && now_nanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return aborted();
}

void PipelineWatchdog::request_abort(const std::string& reason) {
  if (aborted_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard lock(reason_mutex_);
    abort_reason_ = reason;
  }
  if (on_abort_) on_abort_();
}

std::string PipelineWatchdog::abort_reason() const {
  std::lock_guard lock(reason_mutex_);
  return abort_reason_;
}

void PipelineWatchdog::mark_stalled(Slot& slot) {
  if (!slot.ever_stalled.exchange(true, std::memory_order_acq_rel)) {
    stalled_workers_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PipelineWatchdog::monitor_loop() {
  double poll = options_.poll_seconds > 0.0 ? options_.poll_seconds
                                            : options_.timeout_seconds / 4.0;
  poll = std::clamp(poll, 0.001, 0.25);
  const auto poll_interval =
      std::chrono::nanoseconds(static_cast<std::int64_t>(poll * 1e9));
  const double timeout = options_.timeout_seconds;

  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll_interval);
    if (stop_.load(std::memory_order_acquire)) break;

    const std::int64_t now = now_nanos();
    std::size_t wedged_processing = 0;
    for (unsigned w = 0; w < slots_.size(); ++w) {
      Slot& slot = slots_[w];
      const std::uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state != kPublished && state != kProcessing) continue;
      const double age =
          static_cast<double>(now - slot.heartbeat_nanos.load(
                                        std::memory_order_acquire)) *
          1e-9;
      if (age <= timeout) continue;

      if (state == kPublished) {
        // Steal: the CAS is the ownership handoff. If the worker claims
        // concurrently, exactly one of the two operations wins.
        std::uint8_t expected = kPublished;
        if (!slot.state.compare_exchange_strong(expected, kStolen,
                                                std::memory_order_acq_rel)) {
          continue;  // worker woke up and claimed first
        }
        mark_stalled(slot);
        std::optional<OwnedVertexRecord> record;
        {
          std::lock_guard lock(slot.record_mutex);
          record.swap(slot.record);
        }
        if (record && rescue_) {
          rescue_(w, std::move(*record));
          rescued_records_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        // Wedged mid-placement: stealing would double-place. Count it; if
        // every worker is wedged this way the pipeline is dead.
        mark_stalled(slot);
        ++wedged_processing;
      }
    }
    if (wedged_processing == slots_.size() && !slots_.empty()) {
      request_abort("all " + std::to_string(slots_.size()) +
                    " workers stalled mid-placement past " +
                    std::to_string(timeout) + "s watchdog timeout");
      break;
    }
  }
}

}  // namespace spnl
