// RCT — hash-based Reversed-Counting Table for dependency detection among
// concurrently streamed vertices (paper Sec. V-B, Fig. 6).
//
// Every in-flight vertex (taken from the producer-consumer queue, not yet
// placed) is registered with a dependency counter. While a worker traverses
// N_out(v) to compute v's distribution score — a traversal it performs
// anyway — it bumps the counter of every out-neighbor that is itself in
// flight: those neighbors would see a richer Γ row if v were placed first.
// A vertex whose own counter exceeds the threshold (the mean of the non-zero
// counters, the paper's default) is parked; placing a vertex decrements its
// in-flight out-neighbors' counters and releases parked vertices that reach
// zero. Capacity is ε·M entries (M = worker count): when the table is full,
// registration fails and the vertex simply proceeds untracked (counted in
// untracked_overflow() so silent degradation is observable).
//
// Concurrency: the table is lock-striped into `num_shards` shards (pass
// recommended_shards(M) = next_pow2(M) from the parallel driver; the default
// of 1 preserves the original single-lock semantics exactly). A vertex lives
// in shard v mod S; each shard is a cache-line-aligned open-addressed flat
// table (linear probing, backward-shift deletion) behind its own mutex, so
// workers bumping disjoint neighbors take disjoint locks and the O(1) probe
// touches one cache line instead of chasing unordered_map nodes. The delay
// threshold is maintained as relaxed atomics of the global non-zero
// counter sum and count, updated under the owning shard's lock, so
// mean_nonzero_count() is O(1) and lock-free. on_placed locks shards one at
// a time (self shard, then each neighbor's shard) — never two locks at once,
// so there is no lock-ordering hazard.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "graph/types.hpp"

namespace spnl {

class Rct {
 public:
  /// `capacity` bounds the total tracked entries (clamped to >= 1).
  /// Admission is global — a lock-free ticket against the total — never
  /// per shard: with ε·M ≈ 2·next_pow2(M) a per-shard bound degenerates to
  /// 2 entries per shard and refuses registrations while the table is
  /// nearly empty (the M=4 overflow spike documented in
  /// docs/performance.md). Shard tables grow on demand, so capacity only
  /// caps the count, not the distribution.
  explicit Rct(std::size_t capacity, std::uint32_t num_shards = 1);

  /// Shard count matched to the worker count: the smallest power of two
  /// >= num_threads, so the stripe mask is a single AND.
  static std::uint32_t recommended_shards(unsigned num_threads);

  /// Track v as in-flight. Returns false (vertex proceeds untracked) when
  /// the table is full or v is somehow already present.
  bool register_vertex(VertexId v);

  /// Bump u's counter if u is in flight; no-op otherwise. O(1).
  void bump_if_present(VertexId u);

  /// v's own dependency counter (0 if untracked).
  std::uint32_t count(VertexId v) const;

  /// Mean of the non-zero counters; 0 when all counters are zero. This is
  /// the paper's default delay threshold. Lock-free: the sum and count are
  /// read as two relaxed loads, so a concurrent transition can skew one
  /// reading transiently — acceptable for a delay heuristic, and exact
  /// whenever no bump/place is in flight (e.g. single-worker runs).
  double mean_nonzero_count() const;

  /// True if v should be delayed: tracked, counter non-zero, and counter
  /// strictly greater than the mean-of-non-zero threshold is NOT required —
  /// the paper delays "heavy" conflicts, so we use counter >= max(1, mean).
  bool should_delay(VertexId v) const;

  /// Park the (tracked) record until its counter drains. Returns false if
  /// the parked set is at capacity (globally) or the vertex is untracked —
  /// in that case the record is NOT consumed (only moved from on success)
  /// and the caller must place it immediately.
  bool park(OwnedVertexRecord&& record);

  /// Finalize v: untrack it and decrement in-flight out-neighbors' counters.
  /// Parked records whose counter reached zero are returned for immediate
  /// placement by the caller (their entries stay tracked at counter 0 until
  /// their own on_placed).
  std::vector<OwnedVertexRecord> on_placed(VertexId v, std::span<const VertexId> out);

  /// End of stream: hand back whatever is still parked (sorted by id so the
  /// forced tail is placed in stream order).
  std::vector<OwnedVertexRecord> drain_parked();

  /// One parked vertex's full state for checkpointing: the record plus its
  /// live dependency counter (counters of parked vertices only drain when
  /// their still-parked in-neighbors are placed, so they must survive a
  /// resume).
  struct ParkedState {
    VertexId id = kInvalidVertex;
    std::uint32_t counter = 0;
    std::vector<VertexId> out;
  };

  /// Snapshot of the parked set, sorted by id. At a quiesce point (no record
  /// in flight) the parked set IS the table's entire state: every non-parked
  /// registered vertex has been placed and erased.
  std::vector<ParkedState> snapshot_parked() const;

  /// Rebuilds the parked set (entries, counters, records) from a snapshot.
  /// The table must be empty (fresh) — throws std::logic_error otherwise.
  /// Capacity limits are bypassed (shard tables grow as needed) so a
  /// checkpoint taken with more workers than the resuming run restores
  /// losslessly.
  void restore_parked(std::vector<ParkedState> parked);

  std::size_t capacity() const { return capacity_; }
  std::uint32_t num_shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  std::size_t size() const { return entry_count_.load(std::memory_order_relaxed); }

  /// O(1) and lock-free — the parallel driver's quiesce spin polls this.
  std::size_t parked_size() const {
    return parked_count_.load(std::memory_order_relaxed);
  }

  /// Registrations refused because the owning shard was full. Each one is a
  /// vertex that streamed through untracked (no dependency delay), i.e. a
  /// silent quality degradation worth surfacing in run results.
  std::uint64_t untracked_overflow() const {
    return untracked_overflow_.load(std::memory_order_relaxed);
  }

  /// Approximate bytes held by the tables and parked records — part of the
  /// parallel driver's governor-sampled footprint.
  std::size_t memory_footprint_bytes() const;

 private:
  struct Slot {
    VertexId id = kInvalidVertex;  // kInvalidVertex marks an empty slot
    std::uint32_t counter = 0;
    bool parked = false;
  };

  // Cache-line aligned so two shards' mutexes never share a line (the whole
  // point of striping is that workers on different shards do not ping-pong).
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::vector<Slot> table;  // power-of-two open-addressed flat table
    std::size_t table_mask = 0;
    std::size_t entries = 0;
    std::vector<OwnedVertexRecord> parked;  // tiny: linear search by id
  };

  Shard& shard_of(VertexId v) { return shards_[v & shard_mask_]; }
  const Shard& shard_of(VertexId v) const { return shards_[v & shard_mask_]; }

  static std::size_t probe_home(const Shard& shard, VertexId v);
  /// Index of v's slot, or table.size() if absent. Caller holds shard.mutex.
  static std::size_t find_locked(const Shard& shard, VertexId v);
  /// Inserts v (must be absent); grows the table when past half full (only
  /// reachable via restore_parked — register_vertex refuses first). Returns
  /// the slot index. Caller holds shard.mutex.
  std::size_t insert_locked(Shard& shard, VertexId v);
  /// Backward-shift deletion at `hole`. Caller holds shard.mutex.
  static void erase_locked(Shard& shard, std::size_t hole);
  static void grow_locked(Shard& shard);

  const std::size_t capacity_;
  std::size_t shard_capacity_ = 0;  // initial table-sizing hint only
  std::uint32_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> nonzero_sum_{0};
  std::atomic<std::uint32_t> nonzero_count_{0};
  std::atomic<std::size_t> entry_count_{0};
  std::atomic<std::size_t> parked_count_{0};
  std::atomic<std::uint64_t> untracked_overflow_{0};
};

}  // namespace spnl
