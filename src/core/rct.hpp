// RCT — hash-based Reversed-Counting Table for dependency detection among
// concurrently streamed vertices (paper Sec. V-B, Fig. 6).
//
// Every in-flight vertex (taken from the producer-consumer queue, not yet
// placed) is registered with a dependency counter. While a worker traverses
// N_out(v) to compute v's distribution score — a traversal it performs
// anyway — it bumps the counter of every out-neighbor that is itself in
// flight: those neighbors would see a richer Γ row if v were placed first.
// A vertex whose own counter exceeds the threshold (the mean of the non-zero
// counters, the paper's default) is parked; placing a vertex decrements its
// in-flight out-neighbors' counters and releases parked vertices that reach
// zero. Capacity is ε·M entries (M = worker count): when the table is full,
// registration fails and the vertex simply proceeds untracked.
//
// All operations are internally synchronized (single mutex; the table is
// tiny and operations are O(1) hash lookups).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "graph/types.hpp"

namespace spnl {

class Rct {
 public:
  explicit Rct(std::size_t capacity);

  /// Track v as in-flight. Returns false (vertex proceeds untracked) when
  /// the table is full or v is somehow already present.
  bool register_vertex(VertexId v);

  /// Bump u's counter if u is in flight; no-op otherwise. O(1).
  void bump_if_present(VertexId u);

  /// v's own dependency counter (0 if untracked).
  std::uint32_t count(VertexId v) const;

  /// Mean of the non-zero counters; 0 when all counters are zero. This is
  /// the paper's default delay threshold.
  double mean_nonzero_count() const;

  /// True if v should be delayed: tracked, counter non-zero, and counter
  /// strictly greater than the mean-of-non-zero threshold is NOT required —
  /// the paper delays "heavy" conflicts, so we use counter >= max(1, mean).
  bool should_delay(VertexId v) const;

  /// Park the (tracked) record until its counter drains. Returns false if
  /// the parked set is at capacity or the vertex is untracked — in that case
  /// the record is NOT consumed (only moved from on success) and the caller
  /// must place it immediately.
  bool park(OwnedVertexRecord&& record);

  /// Finalize v: untrack it and decrement in-flight out-neighbors' counters.
  /// Parked records whose counter reached zero are returned for immediate
  /// placement by the caller.
  std::vector<OwnedVertexRecord> on_placed(VertexId v, std::span<const VertexId> out);

  /// End of stream: hand back whatever is still parked (sorted by id so the
  /// forced tail is placed in stream order).
  std::vector<OwnedVertexRecord> drain_parked();

  /// One parked vertex's full state for checkpointing: the record plus its
  /// live dependency counter (counters of parked vertices only drain when
  /// their still-parked in-neighbors are placed, so they must survive a
  /// resume).
  struct ParkedState {
    VertexId id = kInvalidVertex;
    std::uint32_t counter = 0;
    std::vector<VertexId> out;
  };

  /// Snapshot of the parked set, sorted by id. At a quiesce point (no record
  /// in flight) the parked set IS the table's entire state: every non-parked
  /// registered vertex has been placed and erased.
  std::vector<ParkedState> snapshot_parked() const;

  /// Rebuilds the parked set (entries, counters, records) from a snapshot.
  /// The table must be empty (fresh) — throws std::logic_error otherwise.
  void restore_parked(std::vector<ParkedState> parked);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::size_t parked_size() const;

  /// Approximate bytes held by the table and parked records — part of the
  /// parallel driver's governor-sampled footprint.
  std::size_t memory_footprint_bytes() const;

 private:
  struct Entry {
    std::uint32_t counter = 0;
    bool parked = false;
  };

  std::vector<OwnedVertexRecord> release_ready_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<VertexId, Entry> entries_;
  std::unordered_map<VertexId, OwnedVertexRecord> parked_;
  std::uint64_t nonzero_sum_ = 0;
  std::uint32_t nonzero_count_ = 0;
};

}  // namespace spnl
