// RCT — hash-based Reversed-Counting Table for dependency detection among
// concurrently streamed vertices (paper Sec. V-B, Fig. 6).
//
// Every in-flight vertex (taken from the producer-consumer queue, not yet
// placed) is registered with a dependency counter. While a worker traverses
// N_out(v) to compute v's distribution score — a traversal it performs
// anyway — it bumps the counter of every out-neighbor that is itself in
// flight: those neighbors would see a richer Γ row if v were placed first.
// A vertex whose own counter exceeds the threshold (the mean of the non-zero
// counters, the paper's default) is parked; placing a vertex decrements its
// in-flight out-neighbors' counters and releases parked vertices that reach
// zero. Capacity is ε·M entries (M = worker count): when the table is full,
// registration fails and the vertex simply proceeds untracked (counted in
// untracked_overflow() so silent degradation is observable).
//
// Concurrency: the table is striped into `num_shards` shards (pass
// recommended_shards(M) = next_pow2(M) from the parallel driver). A vertex
// lives in shard v mod S; each shard is a cache-line-aligned open-addressed
// flat table (linear probing, backward-shift deletion) behind a
// shared_mutex. Two hot-path disciplines, selected at construction:
//
//  * RctMode::kLockFree (default) — the per-record operations (register,
//    bump, count, should_delay, decrement) take the shard lock SHARED and
//    mutate slots with atomics: registration claims an empty slot with a
//    CAS on the id, bumps are fetch_adds, decrements are CAS loops that
//    never go below zero. Workers on the same shard no longer serialize;
//    the exclusive side is reserved for structural mutation (table growth,
//    erase + backward-shift, park/unpark, snapshot/restore), which is
//    exactly what the shared/exclusive split exists to protect: probe
//    chains and the parked vector are only rewritten under exclusive, so
//    shared-side probes are stable.
//  * RctMode::kStriped — every operation takes the shard lock EXCLUSIVE;
//    this is PR 4's striped behavior, kept as the measurable baseline for
//    the contention counters.
//
//  Counter-accounting exactness (both modes): a 0→nonzero transition is
//  observed by exactly one fetch_add (the one whose previous value was 0)
//  and a nonzero→0 transition by exactly one CAS (the one that installed
//  0), so nonzero_sum_/nonzero_count_ stay exact under concurrency. Erase
//  runs under the exclusive lock, which excludes all shared-side bumps and
//  decrements on that shard, so the residual counter it subtracts cannot
//  change mid-erase.
//
//  Lock nesting: at most one shard lock is ever held, and never shared and
//  exclusive on the same shard simultaneously. The lock-free claim and the
//  1→0 unpark handoff both RELEASE the shared lock before taking the
//  exclusive one (upgrading in place would self-deadlock on shared_mutex)
//  and re-validate the slot after reacquisition — see register_vertex and
//  on_placed for the audit notes.
//
//  Out of contract: concurrently registering the SAME vertex id from two
//  threads. The driver registers each vertex exactly once, from the worker
//  that popped it; duplicate registration is only detected sequentially.
//
// The delay threshold is maintained as relaxed atomics of the global
// non-zero counter sum and count, so mean_nonzero_count() is O(1) and
// lock-free. Contention is counted in always-on relaxed atomics
// (contended/total exclusive acquisitions, contended shared acquisitions,
// claim/decrement CAS retries); merge_contention_into() folds them into a
// PerfStats after the pipeline joins.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "graph/types.hpp"
#include "util/perf_stats.hpp"

namespace spnl {

/// Hot-path locking discipline for the RCT shards (see file header).
enum class RctMode {
  kLockFree,  ///< shared lock + atomic slots on the per-record path
  kStriped,   ///< exclusive lock for every operation (PR 4 baseline)
};

class Rct {
 public:
  /// `capacity` bounds the total tracked entries (clamped to >= 1).
  /// Admission is global — a lock-free ticket against the total — never
  /// per shard: with ε·M ≈ 2·next_pow2(M) a per-shard bound degenerates to
  /// 2 entries per shard and refuses registrations while the table is
  /// nearly empty (the M=4 overflow spike documented in
  /// docs/performance.md). Shard tables grow on demand, so capacity only
  /// caps the count, not the distribution.
  explicit Rct(std::size_t capacity, std::uint32_t num_shards = 1,
               RctMode mode = RctMode::kLockFree);

  /// Shard count matched to the worker count: the smallest power of two
  /// >= num_threads, so the stripe mask is a single AND.
  static std::uint32_t recommended_shards(unsigned num_threads);

  RctMode mode() const { return mode_; }

  /// Track v as in-flight. Returns false (vertex proceeds untracked) when
  /// the table is full or v is somehow already present.
  bool register_vertex(VertexId v);

  /// Bump u's counter if u is in flight; no-op otherwise. O(1).
  void bump_if_present(VertexId u);

  /// v's own dependency counter (0 if untracked).
  std::uint32_t count(VertexId v) const;

  /// Mean of the non-zero counters; 0 when all counters are zero. This is
  /// the paper's default delay threshold. Lock-free: the sum and count are
  /// read as two relaxed loads, so a concurrent transition can skew one
  /// reading transiently — acceptable for a delay heuristic, and exact
  /// whenever no bump/place is in flight (e.g. single-worker runs).
  double mean_nonzero_count() const;

  /// True if v should be delayed: tracked, counter non-zero, and counter
  /// strictly greater than the mean-of-non-zero threshold is NOT required —
  /// the paper delays "heavy" conflicts, so we use counter >= max(1, mean).
  bool should_delay(VertexId v) const;

  /// Park the (tracked) record until its counter drains. Returns false if
  /// the parked set is at capacity (globally) or the vertex is untracked —
  /// in that case the record is NOT consumed (only moved from on success)
  /// and the caller must place it immediately.
  bool park(OwnedVertexRecord&& record);

  /// Finalize v: untrack it and decrement in-flight out-neighbors' counters.
  /// Parked records whose counter reached zero are returned for immediate
  /// placement by the caller (their entries stay tracked at counter 0 until
  /// their own on_placed).
  std::vector<OwnedVertexRecord> on_placed(VertexId v, std::span<const VertexId> out);

  /// End of stream: hand back whatever is still parked (sorted by id so the
  /// forced tail is placed in stream order).
  std::vector<OwnedVertexRecord> drain_parked();

  /// One parked vertex's full state for checkpointing: the record plus its
  /// live dependency counter (counters of parked vertices only drain when
  /// their still-parked in-neighbors are placed, so they must survive a
  /// resume).
  struct ParkedState {
    VertexId id = kInvalidVertex;
    std::uint32_t counter = 0;
    std::vector<VertexId> out;
  };

  /// Snapshot of the parked set, sorted by id. At a quiesce point (no record
  /// in flight) the parked set IS the table's entire state: every non-parked
  /// registered vertex has been placed and erased.
  std::vector<ParkedState> snapshot_parked() const;

  /// Rebuilds the parked set (entries, counters, records) from a snapshot.
  /// The table must be empty (fresh) — throws std::logic_error otherwise.
  /// Capacity limits are bypassed (shard tables grow as needed) so a
  /// checkpoint taken with more workers than the resuming run restores
  /// losslessly.
  void restore_parked(std::vector<ParkedState> parked);

  std::size_t capacity() const { return capacity_; }
  std::uint32_t num_shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  std::size_t size() const { return entry_count_.load(std::memory_order_relaxed); }

  /// O(1) and lock-free — the parallel driver's quiesce spin polls this.
  std::size_t parked_size() const {
    return parked_count_.load(std::memory_order_relaxed);
  }

  /// Registrations refused because the owning shard was full. Each one is a
  /// vertex that streamed through untracked (no dependency delay), i.e. a
  /// silent quality degradation worth surfacing in run results.
  std::uint64_t untracked_overflow() const {
    return untracked_overflow_.load(std::memory_order_relaxed);
  }

  /// Always-on contention tallies (relaxed atomics; exact totals after the
  /// pipeline joins). exclusive_acquires in particular gives a DETERMINISTIC
  /// lockfree-vs-striped comparison: striped mode pays one exclusive
  /// acquisition per operation, lock-free mode only on structural slow
  /// paths — regardless of how many cores actually contend.
  std::uint64_t shared_contended() const {
    return shared_contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t exclusive_contended() const {
    return exclusive_contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t exclusive_acquires() const {
    return exclusive_acquires_.load(std::memory_order_relaxed);
  }
  std::uint64_t claim_cas_retries() const {
    return claim_cas_retries_.load(std::memory_order_relaxed);
  }
  std::uint64_t decrement_cas_retries() const {
    return decrement_cas_retries_.load(std::memory_order_relaxed);
  }

  /// Fold the contention tallies into a PerfStats (caller synchronizes —
  /// the driver does this once, after join).
  void merge_contention_into(PerfStats& perf) const;

  /// Approximate bytes held by the tables and parked records — part of the
  /// parallel driver's governor-sampled footprint.
  std::size_t memory_footprint_bytes() const;

 private:
  /// Slot fields are atomics so the lock-free mode can claim/bump/decrement
  /// under the SHARED lock; `parked` is a plain bool because it is only
  /// written under the exclusive lock (shared holders may read it — writer
  /// exclusion makes that race-free). Invariant: an empty slot
  /// (id == kInvalidVertex) always has counter == 0 and parked == false, so
  /// a freshly claimed slot needs no counter initialization.
  struct Slot {
    std::atomic<VertexId> id{kInvalidVertex};
    std::atomic<std::uint32_t> counter{0};
    bool parked = false;
  };

  // Cache-line aligned so two shards' mutexes never share a line (the whole
  // point of striping is that workers on different shards do not ping-pong).
  struct alignas(64) Shard {
    mutable std::shared_mutex mutex;
    std::unique_ptr<Slot[]> table;  // power-of-two open-addressed flat table
    std::size_t table_size = 0;
    std::size_t table_mask = 0;
    /// Atomic because lock-free claims increment it under the shared lock.
    std::atomic<std::size_t> entries{0};
    std::vector<OwnedVertexRecord> parked;  // tiny: linear search by id
  };

  /// RAII shard guard implementing the mode split: "shared intent" acquires
  /// the lock shared in kLockFree mode and exclusive in kStriped mode;
  /// "exclusive intent" is always exclusive. Contended acquisitions are
  /// detected with a try_lock-first pattern and tallied.
  class Guard;

  Shard& shard_of(VertexId v) { return shards_[v & shard_mask_]; }
  const Shard& shard_of(VertexId v) const { return shards_[v & shard_mask_]; }

  static std::size_t probe_home(const Shard& shard, VertexId v);
  /// Index of v's slot, or table_size if absent. Caller holds the shard lock
  /// (shared suffices: probe chains only change under exclusive).
  static std::size_t find_locked(const Shard& shard, VertexId v);
  /// Inserts v (must be absent); grows the table when past half full.
  /// Returns the slot index. Caller holds the shard lock EXCLUSIVE.
  std::size_t insert_locked(Shard& shard, VertexId v);
  /// Backward-shift deletion at `hole`. Caller holds the lock EXCLUSIVE.
  static void erase_locked(Shard& shard, std::size_t hole);
  static void grow_locked(Shard& shard);
  static void alloc_table(Shard& shard, std::size_t size);

  /// Slow path of register_vertex: exclusive insert with growth, used by the
  /// striped mode and by the lock-free claim when it runs out of room.
  bool register_exclusive(VertexId v);

  const std::size_t capacity_;
  const RctMode mode_;
  std::size_t shard_capacity_ = 0;  // initial table-sizing hint only
  std::uint32_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> nonzero_sum_{0};
  std::atomic<std::uint32_t> nonzero_count_{0};
  std::atomic<std::size_t> entry_count_{0};
  std::atomic<std::size_t> parked_count_{0};
  std::atomic<std::uint64_t> untracked_overflow_{0};
  // mutable: const operations (count, should_delay, snapshot) still acquire
  // shard locks and must tally their contention.
  mutable std::atomic<std::uint64_t> shared_contended_{0};
  mutable std::atomic<std::uint64_t> exclusive_contended_{0};
  mutable std::atomic<std::uint64_t> exclusive_acquires_{0};
  mutable std::atomic<std::uint64_t> claim_cas_retries_{0};
  mutable std::atomic<std::uint64_t> decrement_cas_retries_{0};
};

}  // namespace spnl
