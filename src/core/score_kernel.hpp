// Fused scoring kernel shared by the SPN/SPNL place() hot paths.
//
// The reference formulation (kept verbatim as the oracle in
// tests/reference_partitioners.hpp and raced by bench_microkernel) walks the
// out-list twice (once for the λ term, once for Γ rows / increments) and pays
// a non-inlined load() call with a balance-mode switch per partition in both
// the capacity weighting and the argmax. The kernel here:
//
//  * fuses Γ-window membership + row-offset computation into the single pass
//    over the out-list (the modulo is the expensive bit — it is now computed
//    once per neighbor and reused by both the kNeighborSum row reads and the
//    post-commit increments);
//  * hoists the balance-mode switch out of the per-partition loops
//    (compute_loads) so the weight application and argmax are tight,
//    branch-predictable runs over contiguous doubles;
//  * reuses scratch buffers across place() calls.
//
// Byte-identity contract: every floating-point operation is performed on the
// same values in the same order as the reference (λ additions first, then Γ
// contributions in out-list order, then the weight multiply), so routes are
// bit-identical — the golden tests and test_scoring_kernel enforce this.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

/// Per-partitioner scratch reused across place() calls. Not counted in the
/// MC metric: loads is O(K); gamma_rows is bounded by the record's out-degree
/// and shrinks to the high-water mark of a single adjacency list.
struct ScoreKernelScratch {
  std::vector<double> loads;             // per-partition load snapshot
  std::vector<std::size_t> gamma_rows;   // Γ row offsets of in-window neighbors
};

// Best-effort cache prefetch hints (no-ops off GCC/Clang). At the paper's
// recommended shard count the Γ table is tens of MB and the out-neighbors are
// scattered, so the route entries and Γ rows a record touches are almost
// always cache misses. Issuing the prefetches while the offsets are being
// stashed overlaps the DRAM latency with the rest of the scoring work instead
// of stalling the λ loop and the post-commit increment loop. Hints never
// change architectural state, so byte-identity is unaffected.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Fills loads[i] with the current load of every partition under the given
/// balance mode — identical arithmetic to GreedyStreamingBase::load(), with
/// the mode switch hoisted out of the loop.
inline void compute_loads(BalanceMode mode, std::span<const VertexId> vertex_counts,
                          std::span<const EdgeId> edge_counts, double capacity,
                          double edge_capacity, std::vector<double>& loads) {
  const std::size_t k = vertex_counts.size();
  loads.resize(k);
  switch (mode) {
    case BalanceMode::kVertex:
      for (std::size_t i = 0; i < k; ++i) {
        loads[i] = static_cast<double>(vertex_counts[i]);
      }
      break;
    case BalanceMode::kEdge:
      for (std::size_t i = 0; i < k; ++i) {
        loads[i] = static_cast<double>(edge_counts[i]);
      }
      break;
    case BalanceMode::kBoth:
      for (std::size_t i = 0; i < k; ++i) {
        const double vertex_util = static_cast<double>(vertex_counts[i]);
        const double edge_util =
            static_cast<double>(edge_counts[i]) / edge_capacity * capacity;
        loads[i] = vertex_util > edge_util ? vertex_util : edge_util;
      }
      break;
  }
}

/// Applies the remaining-capacity weight scores[i] *= 1 - loads[i]/C and
/// returns the argmax under GreedyStreamingBase::pick_best's exact contract:
/// full partitions (load >= C) are skipped, ties break to the lower load then
/// the lower id (first winner kept), and when everything is full the
/// globally least-loaded partition absorbs the overflow.
inline PartitionId weigh_and_pick(std::span<double> scores,
                                  std::span<const double> loads, double capacity) {
  const std::size_t k = scores.size();
  // Weight and argmax in one pass: scores[i] is final before slot i is
  // compared, so the comparison sequence (and the winner) is identical to
  // the reference's weight-everything-then-scan order.
  PartitionId best = kUnassigned;
  for (std::size_t i = 0; i < k; ++i) {
    scores[i] *= 1.0 - loads[i] / capacity;
    if (loads[i] >= capacity) continue;
    if (best == kUnassigned || scores[i] > scores[best] ||
        (scores[i] == scores[best] && loads[i] < loads[best])) {
      best = static_cast<PartitionId>(i);
    }
  }
  if (best != kUnassigned) return best;
  best = 0;
  for (std::size_t i = 1; i < k; ++i) {
    if (loads[i] < loads[best]) best = static_cast<PartitionId>(i);
  }
  return best;
}

}  // namespace spnl
