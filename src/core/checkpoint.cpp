#include "core/checkpoint.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "graph/io.hpp"
#include "util/checked_io.hpp"

namespace spnl {

namespace {

constexpr std::uint64_t kCheckpointMagic = 0x53504e4c434b5031ULL;  // "SPNLCKP1"
constexpr std::uint32_t kCheckpointVersion = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void StateReader::expect_u32(std::uint32_t expected, const char* what) {
  const std::uint32_t got = get_u32();
  if (got != expected) {
    throw CheckpointError(std::string("checkpoint: ") + what + " mismatch (snapshot " +
                          std::to_string(got) + ", current " +
                          std::to_string(expected) + ")");
  }
}

void StateReader::expect_u64(std::uint64_t expected, const char* what) {
  const std::uint64_t got = get_u64();
  if (got != expected) {
    throw CheckpointError(std::string("checkpoint: ") + what + " mismatch (snapshot " +
                          std::to_string(got) + ", current " +
                          std::to_string(expected) + ")");
  }
}

void StateReader::expect_string(const std::string& expected, const char* what) {
  const std::string got = get_string();
  if (got != expected) {
    throw CheckpointError(std::string("checkpoint: ") + what + " mismatch (snapshot \"" +
                          got + "\", current \"" + expected + "\")");
  }
}

void write_checkpoint_file(const std::string& path, const StateWriter& payload) {
  // Crash-atomic publish protocol (AtomicFileWriter): bytes land in
  // <path>.tmp through the checked fault-injectable writer, are fsynced to
  // stable storage, and only then renamed over <path> (with a directory
  // fsync sealing the rename). A crash or power cut at ANY point leaves
  // either the previous snapshot intact or the new one complete — never a
  // torn file at the published path; the tmp of a failed write is unlinked
  // on unwind, and a stale .tmp from a hard crash is simply overwritten by
  // the next snapshot. I/O failures are rethrown as CheckpointError so
  // resume-path callers keep one exception type.
  try {
    AtomicFileWriter atomic(path);
    FdWriter& out = atomic.out();
    const std::uint64_t magic = kCheckpointMagic;
    const std::uint32_t version = kCheckpointVersion;
    const std::uint64_t size = payload.bytes().size();
    const std::uint32_t crc = crc32(payload.bytes().data(), payload.bytes().size());
    out.append(&magic, sizeof(magic));
    out.append(&version, sizeof(version));
    out.append(&size, sizeof(size));
    out.append(&crc, sizeof(crc));
    out.append(payload.bytes().data(), payload.bytes().size());
    atomic.commit();
  } catch (const IoError& e) {
    throw CheckpointError(std::string("checkpoint: ") + e.what());
  }
}

StateReader read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("checkpoint: cannot open: " + path);

  std::uint64_t magic = 0, size = 0;
  std::uint32_t version = 0, crc = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in || magic != kCheckpointMagic) {
    throw CheckpointError("checkpoint: bad header: " + path);
  }
  if (version != kCheckpointVersion) {
    throw CheckpointError("checkpoint: unsupported version " +
                          std::to_string(version) + ": " + path);
  }

  // Bound the payload by the actual file size before allocating.
  const std::streampos payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::uint64_t available =
      static_cast<std::uint64_t>(in.tellg() - payload_start);
  if (size != available) {
    throw CheckpointError("checkpoint: truncated file (payload " +
                          std::to_string(available) + " of " + std::to_string(size) +
                          " bytes): " + path);
  }
  in.seekg(payload_start);

  std::vector<std::uint8_t> payload(size);
  in.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(size));
  if (!in) throw CheckpointError("checkpoint: read error: " + path);
  if (crc32(payload.data(), payload.size()) != crc) {
    throw CheckpointError("checkpoint: CRC mismatch (corrupt snapshot): " + path);
  }
  return StateReader(std::move(payload));
}

}  // namespace spnl
