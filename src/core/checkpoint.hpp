// Checkpoint/resume subsystem: versioned, CRC-checked binary snapshots of
// partitioner state, written with atomic rename-on-write so a crash mid-write
// never corrupts the previous snapshot.
//
// A streaming partitioner makes irrevocable placements from a local view
// (Sec. II) — a crash mid-stream would otherwise lose the Γ tables, loads and
// logical-assignment state and force a full re-partition. The contract here
// is strict determinism: a run interrupted at any placement and resumed from
// the latest snapshot produces a byte-identical route to an uninterrupted
// run (enforced by tests/test_checkpoint.cpp).
//
// File container layout (all little-endian native, same-machine restarts):
//   u64 magic "SPNLCKP1" | u32 version | u64 payload_size | u32 crc32(payload)
//   | payload bytes
// The payload is a flat field stream produced by StateWriter; every consumer
// validates structural guards (counts, dimensions) before trusting contents.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace spnl {

/// Typed error for every checkpoint failure mode: missing/truncated file,
/// CRC mismatch, version skew, or a snapshot that does not match the
/// configuration it is being restored into.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains partial updates.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Append-only binary field stream. Vectors are length-prefixed; strings are
/// u32-length-prefixed UTF-8 bytes.
class StateWriter {
 public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }

  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u64(v.size());
    put_raw(v.data(), v.size() * sizeof(T));
  }

  void put_raw(const void* data, std::size_t size) {
    if (size == 0) return;  // empty vector's data() may be null
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a payload; every underflow or guard mismatch
/// throws CheckpointError (never reads out of bounds).
class StateReader {
 public:
  explicit StateReader(std::vector<std::uint8_t> bytes) : buf_(std::move(bytes)) {}

  std::uint32_t get_u32() { return get_pod<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_pod<std::uint64_t>(); }
  double get_f64() { return get_pod<double>(); }

  std::string get_string() {
    const std::uint32_t size = get_u32();
    need(size);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), size);
    pos_ += size;
    return s;
  }

  template <typename T>
  std::vector<T> get_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = get_u64();
    if (count > buf_.size() / sizeof(T)) {
      throw CheckpointError("checkpoint: vector length exceeds payload");
    }
    need(count * sizeof(T));
    std::vector<T> v(count);
    if (count > 0) {  // empty vector's data() may be null (UB for memcpy)
      std::memcpy(v.data(), buf_.data() + pos_, count * sizeof(T));
    }
    pos_ += count * sizeof(T);
    return v;
  }

  /// Reads a u32/u64/string and throws (naming `what`) unless it equals the
  /// expected value — the structural-guard primitive of every restore path.
  void expect_u32(std::uint32_t expected, const char* what);
  void expect_u64(std::uint64_t expected, const char* what);
  void expect_string(const std::string& expected, const char* what);

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  T get_pod() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t size) const {
    if (size > buf_.size() - pos_) {
      throw CheckpointError("checkpoint: truncated payload");
    }
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Writes `payload` to `path` atomically: the bytes land in `path + ".tmp"`
/// first and are renamed over `path` only after a successful flush, so an
/// interrupted write leaves the previous snapshot intact.
void write_checkpoint_file(const std::string& path, const StateWriter& payload);

/// Reads and validates a checkpoint container (magic, version, size, CRC);
/// returns a reader positioned at the start of the payload.
StateReader read_checkpoint_file(const std::string& path);

/// Snapshot cadence policy: "snapshot every N placements into `path`".
class Checkpointer {
 public:
  Checkpointer() = default;
  Checkpointer(std::string path, std::uint64_t every)
      : path_(std::move(path)), every_(every) {}

  bool enabled() const { return every_ > 0 && !path_.empty(); }

  /// True when a snapshot is owed at `placements` total placements.
  bool due(std::uint64_t placements) const {
    return enabled() && placements > 0 && placements % every_ == 0;
  }

  /// Crossing-aware variant for batched producers: the counter advances by
  /// whole batches, so "is an exact multiple" would skip boundaries that fall
  /// inside a batch. True when [prev, now] crossed at least one multiple of
  /// `every`. Equivalent to due(now) when now == prev + 1.
  bool due(std::uint64_t prev, std::uint64_t now) const {
    return enabled() && now / every_ > prev / every_;
  }

  void write(const StateWriter& payload) {
    write_checkpoint_file(path_, payload);
    ++taken_;
  }

  const std::string& path() const { return path_; }
  std::uint64_t every() const { return every_; }
  std::uint64_t snapshots_taken() const { return taken_; }

 private:
  std::string path_;
  std::uint64_t every_ = 0;
  std::uint64_t taken_ = 0;
};

}  // namespace spnl
