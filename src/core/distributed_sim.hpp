// Deterministic simulation of DISTRIBUTED streaming partitioning — the
// related-work designs the paper contrasts its shared-memory parallelism
// against (Sec. III-C: Shi et al.'s distributed FENNEL [33], Hua et al.'s
// independent quasi-streaming [34]): W workers partition disjoint slices of
// the stream using heuristic state that is NOT centrally maintained.
//
// Two sharing disciplines are modeled:
//  * kIndependent — chunked: worker w sees only its own placements (plus
//    the initial empty state); results are merged at the end. This is the
//    [34]-style decomposition whose quality "heavily degrades".
//  * kPeriodicSync — workers proceed round-robin and refresh their snapshot
//    of the global route/loads every sync_interval placements, modeling
//    broadcast updates over a network (staleness in between).
//
// The simulation is single-threaded and deterministic (round-robin worker
// schedule): it isolates the QUALITY effect of distributed state, which is
// the paper's argument; wall-clock behavior is out of scope here.
#pragma once

#include <cstdint>

#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

enum class DistributedMode {
  kIndependent,
  kPeriodicSync,
};

struct DistributedSimOptions {
  unsigned num_workers = 4;
  DistributedMode mode = DistributedMode::kPeriodicSync;
  /// Placements between snapshot refreshes (kPeriodicSync).
  VertexId sync_interval = 1024;
  /// Score with the LDG rule (false) or the SPNL rule (true).
  bool use_spnl_scoring = true;
};

struct DistributedSimResult {
  std::vector<PartitionId> route;
  /// Placements decided against stale state that a fresh view would have
  /// decided differently (a staleness-impact indicator).
  std::uint64_t stale_decisions = 0;
};

DistributedSimResult distributed_stream_partition(AdjacencyStream& stream,
                                                  const PartitionConfig& config,
                                                  const DistributedSimOptions& options);

}  // namespace spnl
