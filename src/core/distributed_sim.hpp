// Deterministic simulation of DISTRIBUTED streaming partitioning — the
// related-work designs the paper contrasts its shared-memory parallelism
// against (Sec. III-C: Shi et al.'s distributed FENNEL [33], Hua et al.'s
// independent quasi-streaming [34]): W workers partition disjoint slices of
// the stream using heuristic state that is NOT centrally maintained.
//
// Two sharing disciplines are modeled:
//  * kIndependent — chunked: worker w sees only its own placements (plus
//    the initial empty state); results are merged at the end. This is the
//    [34]-style decomposition whose quality "heavily degrades".
//  * kPeriodicSync — workers proceed round-robin and refresh their snapshot
//    of the global route/loads every sync_interval placements, modeling
//    broadcast updates over a network (staleness in between).
//
// Fault injection: a seeded FaultPlan perturbs the run the way a real
// cluster would — workers crash and lose their private state mid-stream,
// sync snapshots are dropped, delayed by one refresh epoch, or delivered
// twice. Recovery policies either abandon the crashed worker's remaining
// slice (kNone) or reassign it to a surviving worker whose view is rebuilt
// from the committed global route (kReassign — checkpoint-style recovery).
// Everything stays seed-deterministic: the same options always produce the
// same route and the same fault/recovery counters.
//
// The simulation is single-threaded and deterministic (round-robin worker
// schedule): it isolates the QUALITY effect of distributed state, which is
// the paper's argument; wall-clock behavior is out of scope here.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

enum class DistributedMode {
  kIndependent,
  kPeriodicSync,
};

/// What happens to a crashed worker's unprocessed slice remainder.
enum class RecoveryPolicy {
  kNone,      ///< records are lost; their vertices stay kUnassigned
  kReassign,  ///< a surviving worker adopts the slice, rebuilding its view
              ///< from the committed global route
};

/// A scripted worker crash: worker `worker` dies (losing its private view)
/// the first time the global placement count reaches `at_placement`.
struct WorkerCrash {
  unsigned worker = 0;
  std::uint64_t at_placement = 0;
};

/// A scripted straggler: worker `worker` freezes (skips its round-robin
/// turns) for `for_placements` turns once the global placement count reaches
/// `at_placement`. Unlike a crash, no work is lost — the slice just waits,
/// modeling a GC pause / CPU-starved node. When every live worker with
/// remaining work is stalled simultaneously, the least-index stalled worker
/// proceeds anyway (the watchdog-kick analogue; prevents livelock).
struct WorkerStall {
  unsigned worker = 0;
  std::uint64_t at_placement = 0;
  std::uint64_t for_placements = 1;
};

/// Seeded fault schedule. Sync-message faults draw from one deterministic
/// RNG in a fixed order, so a plan replays identically run after run.
struct FaultPlan {
  std::vector<WorkerCrash> crashes;
  std::vector<WorkerStall> stalls;
  /// Per-worker-per-sync probability the refresh is silently lost.
  double drop_sync_prob = 0.0;
  /// Per-worker-per-sync probability the refresh delivers the PREVIOUS
  /// epoch's snapshot (one-epoch network delay -> extra staleness).
  double delay_sync_prob = 0.0;
  /// Per-worker-per-sync probability the refresh is delivered twice
  /// (snapshot application must be idempotent; counted to prove coverage).
  double duplicate_sync_prob = 0.0;
  std::uint64_t seed = 0x5eed;

  bool has_sync_faults() const {
    return drop_sync_prob > 0.0 || delay_sync_prob > 0.0 ||
           duplicate_sync_prob > 0.0;
  }
  bool any() const {
    return !crashes.empty() || !stalls.empty() || has_sync_faults();
  }
};

struct DistributedSimOptions {
  unsigned num_workers = 4;
  DistributedMode mode = DistributedMode::kPeriodicSync;
  /// Placements between snapshot refreshes (kPeriodicSync).
  VertexId sync_interval = 1024;
  /// Score with the LDG rule (false) or the SPNL rule (true).
  bool use_spnl_scoring = true;
  /// Fault schedule (empty = clean run, bit-identical to the pre-fault
  /// behavior) and what to do about crashes.
  FaultPlan faults;
  RecoveryPolicy recovery = RecoveryPolicy::kReassign;
};

struct DistributedSimResult {
  std::vector<PartitionId> route;
  /// Placements decided against stale state that a fresh view would have
  /// decided differently (a staleness-impact indicator).
  std::uint64_t stale_decisions = 0;
  /// Fault accounting.
  std::uint64_t worker_crashes = 0;
  /// Slice records abandoned by a crash (kNone): their vertices remain
  /// kUnassigned in the route.
  std::uint64_t lost_placements = 0;
  /// Slice records adopted by a surviving worker after a crash (kReassign).
  std::uint64_t recovered_placements = 0;
  /// Stall events that fired, and round-robin turns skipped by stalled
  /// workers (forced livelock-guard turns are not counted as skipped).
  std::uint64_t worker_stalls = 0;
  std::uint64_t stalled_turns = 0;
  std::uint64_t dropped_syncs = 0;
  std::uint64_t delayed_syncs = 0;
  std::uint64_t duplicated_syncs = 0;
};

DistributedSimResult distributed_stream_partition(AdjacencyStream& stream,
                                                  const PartitionConfig& config,
                                                  const DistributedSimOptions& options);

}  // namespace spnl
