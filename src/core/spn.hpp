// SPN — Streaming Partitioner based on in&out-Neighbors (paper Sec. IV-B).
//
// Extends LDG's out-neighbor score with an in-neighbor expectation estimate
// maintained in Γ tables: when a vertex u is placed into P_i, Γ_i(w) is
// incremented for every w ∈ N_out(u), so Γ_i(v) equals |V_i^pt ∩ N_in(v)| at
// the moment v arrives. Placement rule (Eq. 4, estimated as Eq. 5):
//
//   pid = argmax_i { (λ·|V_i^pt ∩ N_out(v)| + (1−λ)·InEstimate_i(v)) · w_t(i,v) }
//
// NOTE on Eq. 5 fidelity: as printed, Eq. 5 sums Γ_i(u) over u ∈ N_out(v).
// The paper's own worked examples (Fig. 2: score (0,1,1) for vertex 7 from
// placed in-neighbors 2 and 6; Fig. 4 likewise) instead use Γ_i(v) of the
// arriving vertex itself — which is exactly the placed-in-neighbor count the
// surrounding text describes. We default to the example-consistent estimator
// (kSelf) and provide the literal reading (kNeighborSum) as an ablation
// option; bench_ablation compares them.
//
// Multigraph semantics (intended, not an accident): parallel edges in the
// out-list count with multiplicity everywhere — each duplicate of u adds λ to
// u's partition in the out-neighbor term, contributes its Γ row again under
// kNeighborSum, and increments Γ_pid(u) once more after placement. The paper's
// sets V_i ∩ N_out(v) are defined over simple crawl graphs where the question
// never arises; on multigraph input a repeated edge is repeated evidence of
// affinity, consistent with how the LDG/FENNEL implementations here weigh it.
// A self-loop (v ∈ N_out(v)) adds nothing at scoring time — v is unplaced and
// its own Γ row only biases the kSelf estimate it is already the subject of —
// but does increment Γ_pid(v) after placement, which is definition-faithful
// (v ∈ N_in(v) ∩ V_pid) and inert since v's row is never read again. Callers
// wanting simple-graph semantics dedupe at load time via
// GraphBuilder::FinishOptions{strip_self_loops, strip_duplicate_edges};
// test_spn_semantics pins these behaviours.
#pragma once

#include <cstdint>

#include "core/gamma_table.hpp"
#include "core/score_kernel.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

/// How the in-neighbor term of Eq. 4 is estimated from Γ (see file comment).
enum class InNeighborEstimator {
  kSelf,         ///< Γ_i(v): placed in-neighbors of v (matches Figs. 2 and 4)
  kNeighborSum,  ///< Σ_{u∈N_out(v)} Γ_i(u): Eq. 5 as literally printed
};

struct SpnOptions {
  /// λ balances out-neighbors vs in-neighbors; the paper's Fig. 3 sweep
  /// selects 0.5. λ=1 degrades SPN to LDG exactly.
  double lambda = 0.5;
  /// Number of sliding-window shards X (Sec. V-A). 0 selects the paper's
  /// recommendation min{4K, |V|/(10^4·K)}; 1 keeps the exact full table.
  std::uint32_t num_shards = 0;
  InNeighborEstimator estimator = InNeighborEstimator::kSelf;
  /// Window slide granularity; kCoarse reproduces the paper's rejected
  /// shard-by-shard design for the ablation.
  SlideMode slide = SlideMode::kFine;
};

class SpnPartitioner final : public GreedyStreamingBase {
 public:
  SpnPartitioner(VertexId num_vertices, EdgeId num_edges,
                 const PartitionConfig& config, SpnOptions options = {});

  PartitionId place(VertexId v, std::span<const VertexId> out) override;
  std::string name() const override { return "SPN"; }
  std::size_t memory_footprint_bytes() const override;
  void save_state(StateWriter& out) const override;
  void restore_state(StateReader& in) override;

  /// Degradation ladder (util/resource_governor.hpp): kShrinkWindow halves
  /// the Γ window (repeatable until W == 1), kCoarseSlide switches the slide
  /// granularity once, kHashFallback drops scoring entirely in favour of a
  /// capacity-weighted hash and releases the Γ storage. Each rung only loses
  /// heuristic accuracy — the capacity invariants and the one-pass contract
  /// are untouched.
  bool apply_degradation(DegradationStage stage) override;
  DegradationStage degradation_stage() const override { return stage_; }

  const GammaWindow& gamma() const { return gamma_; }
  double lambda() const { return options_.lambda; }

 private:
  SpnOptions options_;
  GammaWindow gamma_;
  /// Fused-kernel scratch (loads snapshot + stashed Γ row offsets).
  ScoreKernelScratch scratch_;
  /// Deepest degradation rung applied (persisted across checkpoints).
  DegradationStage stage_ = DegradationStage::kNone;
  bool hash_fallback_ = false;
};

}  // namespace spnl
