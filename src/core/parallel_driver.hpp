// Shared-memory parallel streaming partitioning (paper Sec. V-B).
//
// One producer thread streams adjacency lists in id order into a bounded
// queue; M worker threads pop records, compute SPNL/SPN scores against
// shared state (atomic route table, loads, concurrent Γ window) and place
// vertices. The RCT delays vertices with heavy in-flight dependencies so
// they can still profit from their in-neighbors' placements — the
// "dependency-reduced" optimization that keeps parallel quality within a few
// percent of the sequential run (paper: ≤6%, 2% average).
//
// The Γ window base follows a completion low-watermark (the smallest id not
// yet placed) rather than the newest arrival, so delayed vertices never lose
// their Γ row to an eager slide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"
#include "util/resource_governor.hpp"

namespace spnl {

/// Deterministic straggler/pressure injection for the parallel pipeline —
/// the test harness for every watchdog recovery path.
struct StuckWorkerFault {
  unsigned worker = 0;
  /// Stall when this worker pops its Nth record (1-based).
  std::uint64_t at_pop = 1;
  /// false: stall between publish and claim — the watchdog steals and
  /// rescues the in-flight record, the worker later resumes (a transient
  /// freeze). true: wedge INSIDE the placement, which cannot be stolen; with
  /// every worker wedged this way the monitor aborts the pipeline.
  bool in_processing = false;
  /// Safety bound: the stall ends after this long even if nothing wakes it.
  double max_stall_seconds = 30.0;
};

struct SlowWorkerFault {
  unsigned worker = 0;
  double delay_seconds = 0.0;
  /// Sleep on every Nth pop (1 = every record).
  std::uint64_t every = 1;
};

struct ParallelFaultPlan {
  std::vector<StuckWorkerFault> stuck;
  std::vector<SlowWorkerFault> slow;
  /// Heap ballast allocated and touched for the whole run — co-located
  /// allocation pressure visible to the governor's RSS sampling.
  std::size_t ballast_bytes = 0;

  bool empty() const {
    return stuck.empty() && slow.empty() && ballast_bytes == 0;
  }
};

/// Locking discipline for the shared hot state (Γ window, RCT, watermark).
enum class HotPathMode {
  /// Default: epoch-local Γ delta buffers published at epoch/quiesce
  /// boundaries, CAS-claimed RCT registration under shared shard locks, and
  /// a CAS-advanced completion watermark. Byte-identical routes at M=1.
  kLockFree,
  /// PR 4's striped baseline: every shared-state touch takes an exclusive
  /// stripe lock and Γ increments go straight to the shared counters. Kept
  /// for the contention-counter A/B (perf.contention_smoke) and as a
  /// fallback switch.
  kStriped,
};

struct ParallelOptions {
  /// Worker thread count M (the producer is an extra thread).
  unsigned num_threads = 4;
  std::size_t queue_capacity = 4096;
  /// Micro-batched handoff: the producer pushes this many records per queue
  /// operation and workers pop whole batches, amortizing the mutex/condvar
  /// traffic by the batch size. Clamped to [1, queue_capacity] via
  /// validated_batch_size (values < 1 are a typed error); 1 reproduces the
  /// per-record handoff. Partial batches flush at stream end, and watchdog
  /// publish/claim/steal and checkpoint quiesce still operate per record, so
  /// batching changes throughput, not semantics.
  std::size_t batch_size = 64;
  /// RCT capacity factor ε: the table holds ε·M entries (paper Sec. V-B).
  double epsilon = 2.0;
  /// Disable to measure the quality cost of naive parallelism (ablation).
  bool use_rct = true;
  /// false = parallel SPN (no logical pre-assignment).
  bool use_locality = true;
  /// Heuristic parameters shared with the sequential SPNL.
  SpnlOptions spnl;
  /// Fault tolerance: every checkpoint_every produced records the producer
  /// quiesces the pipeline (waits until every produced record is committed
  /// or parked and no worker is mid-placement) and snapshots the shared
  /// state — route, loads, Γ window, logical counts, parked RCT records and
  /// the stream cursor — into checkpoint_path (atomic rename-on-write).
  /// 0 / empty disables.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  /// Restore a snapshot before streaming; the stream is fast-forwarded past
  /// the committed prefix. With one worker thread the resumed run's route is
  /// byte-identical to the uninterrupted run.
  std::string resume_from;
  /// Per-stage instrumentation sink (not owned; nullptr = off, zero hot-path
  /// cost). Each worker accumulates into a private PerfStats and merges it
  /// here after the pipeline joins, so stage nanos are summed across threads
  /// (kQueueWait additionally covers time blocked on the bounded queue).
  PerfStats* perf = nullptr;
  /// Pipeline watchdog: a worker whose heartbeat stalls past this many
  /// seconds has its in-flight record stolen and rescued by the monitor
  /// thread; when every worker is wedged mid-placement the run aborts with
  /// StreamAborted instead of hanging. <= 0 disables (the seed behavior).
  double watchdog_timeout_seconds = 0.0;
  /// Monitor poll cadence; 0 = timeout/4.
  double watchdog_poll_seconds = 0.0;
  /// Resource governor (not owned; nullptr = off). The producer samples the
  /// pipeline footprint (Γ window + route + counts + RCT) every
  /// sample_interval records and, on breach, quiesces the pipeline and steps
  /// the degradation ladder: repeatable Γ-window halving, then
  /// capacity-weighted hash fallback (coarse slide does not apply to the
  /// watermark-driven concurrent window and is skipped).
  ResourceGovernor* governor = nullptr;
  /// Deterministic fault injection (tests / --inject-faults).
  ParallelFaultPlan faults;
  /// Locking discipline for the shared hot state (see HotPathMode).
  HotPathMode hot_path = HotPathMode::kLockFree;
  /// Row budget of each worker's epoch-local Γ delta buffer (distinct
  /// neighbor ids held between publishes). A full buffer publishes inline,
  /// so this trades merge frequency against buffer footprint, never
  /// correctness. Clamped to >= 1.
  std::size_t gamma_delta_rows = 128;
  /// Publish each worker's Γ delta every this many commits (the epoch
  /// length). Buffers also publish on quiesce (checkpoint/governor, in
  /// worker-index order for deterministic merges) and at worker exit.
  /// 0 means "only on full buffer / quiesce / exit".
  std::uint64_t gamma_epoch_records = 64;
};

/// Contention totals for one parallel run. The RCT tallies are always-on
/// (relaxed atomics inside the table); the queue, Γ-delta and CAS-retry
/// tallies require an attached PerfStats sink (options.perf) and read 0 in
/// uninstrumented runs — the hot path stays zero-overhead when disabled.
struct ContentionReport {
  std::uint64_t rct_shared_contended = 0;
  std::uint64_t rct_exclusive_contended = 0;
  std::uint64_t rct_exclusive_acquires = 0;
  std::uint64_t rct_claim_cas_retries = 0;
  std::uint64_t rct_decrement_cas_retries = 0;
  std::uint64_t queue_lock_contended = 0;
  std::uint64_t queue_lock_acquires = 0;
  std::uint64_t queue_lock_wait_nanos = 0;
  std::uint64_t queue_lock_hold_nanos = 0;
  std::uint64_t gamma_delta_publishes = 0;
  std::uint64_t gamma_delta_cells = 0;
  std::uint64_t gamma_delta_dropped = 0;
  std::uint64_t gamma_head_cas_retries = 0;
  std::uint64_t gamma_advance_contended = 0;
  std::uint64_t watermark_cas_retries = 0;
};

struct ParallelRunResult {
  std::vector<PartitionId> route;
  double partition_seconds = 0.0;
  std::size_t peak_partitioner_bytes = 0;
  /// Vertices parked at least once by the RCT.
  std::uint64_t delayed_vertices = 0;
  /// RCT registrations refused because the table (one of its shards) was
  /// full: each is a vertex that streamed through untracked, silently losing
  /// its dependency delay. Persistently non-zero counts mean ε (epsilon) is
  /// too small for the worker count.
  std::uint64_t untracked_overflow = 0;
  /// Parked vertices force-placed after the stream ended (cyclic waits).
  std::uint64_t forced_vertices = 0;
  /// Snapshots written during this run (0 when checkpointing is off).
  std::uint64_t checkpoints_written = 0;
  /// Stream position the run was resumed from (0 for a fresh run).
  std::uint64_t resumed_at = 0;
  /// Watchdog bookkeeping: distinct workers ever declared stalled, and
  /// in-flight records the monitor stole and placed itself.
  std::uint64_t stalled_workers = 0;
  std::uint64_t rescued_records = 0;
  /// True when the watchdog declared the pipeline dead; the route is the
  /// valid partial route (kUnassigned holes for never-placed vertices).
  bool aborted = false;
  std::string abort_reason;
  /// Ladder transitions the resource governor applied.
  std::vector<DegradationEvent> degradations;
  /// Lock-contention / CAS-retry totals (see ContentionReport for which
  /// fields need an attached PerfStats to be non-zero).
  ContentionReport contention;
};

/// The watchdog declared the pipeline dead (every worker wedged past the
/// timeout). Carries the partial result: aborted/abort_reason are set and
/// `result.route` is the valid partial route.
class StreamAborted : public std::runtime_error {
 public:
  StreamAborted(const std::string& what, ParallelRunResult result)
      : std::runtime_error(what), result(std::move(result)) {}

  ParallelRunResult result;
};

/// Validates a requested micro-batch size against a queue capacity: values
/// < 1 throw std::invalid_argument (the typed error the CLI surfaces instead
/// of UB from a silent unsigned wrap), values above the capacity clamp down
/// to it (a batch larger than the queue could never be pushed whole).
std::size_t validated_batch_size(std::int64_t requested, std::size_t queue_capacity);

/// Runs the parallel partitioner over the stream. The stream is consumed
/// from its current position by the internal producer thread. Throws
/// StreamAborted (carrying the partial result) when the watchdog declares
/// the pipeline dead.
ParallelRunResult run_parallel(AdjacencyStream& stream, const PartitionConfig& config,
                               const ParallelOptions& options);

}  // namespace spnl
