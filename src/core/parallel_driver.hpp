// Shared-memory parallel streaming partitioning (paper Sec. V-B).
//
// One producer thread streams adjacency lists in id order into a bounded
// queue; M worker threads pop records, compute SPNL/SPN scores against
// shared state (atomic route table, loads, concurrent Γ window) and place
// vertices. The RCT delays vertices with heavy in-flight dependencies so
// they can still profit from their in-neighbors' placements — the
// "dependency-reduced" optimization that keeps parallel quality within a few
// percent of the sequential run (paper: ≤6%, 2% average).
//
// The Γ window base follows a completion low-watermark (the smallest id not
// yet placed) rather than the newest arrival, so delayed vertices never lose
// their Γ row to an eager slide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

struct ParallelOptions {
  /// Worker thread count M (the producer is an extra thread).
  unsigned num_threads = 4;
  std::size_t queue_capacity = 4096;
  /// RCT capacity factor ε: the table holds ε·M entries (paper Sec. V-B).
  double epsilon = 2.0;
  /// Disable to measure the quality cost of naive parallelism (ablation).
  bool use_rct = true;
  /// false = parallel SPN (no logical pre-assignment).
  bool use_locality = true;
  /// Heuristic parameters shared with the sequential SPNL.
  SpnlOptions spnl;
  /// Fault tolerance: every checkpoint_every produced records the producer
  /// quiesces the pipeline (waits until every produced record is committed
  /// or parked and no worker is mid-placement) and snapshots the shared
  /// state — route, loads, Γ window, logical counts, parked RCT records and
  /// the stream cursor — into checkpoint_path (atomic rename-on-write).
  /// 0 / empty disables.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  /// Restore a snapshot before streaming; the stream is fast-forwarded past
  /// the committed prefix. With one worker thread the resumed run's route is
  /// byte-identical to the uninterrupted run.
  std::string resume_from;
  /// Per-stage instrumentation sink (not owned; nullptr = off, zero hot-path
  /// cost). Each worker accumulates into a private PerfStats and merges it
  /// here after the pipeline joins, so stage nanos are summed across threads
  /// (kQueueWait additionally covers time blocked on the bounded queue).
  PerfStats* perf = nullptr;
};

struct ParallelRunResult {
  std::vector<PartitionId> route;
  double partition_seconds = 0.0;
  std::size_t peak_partitioner_bytes = 0;
  /// Vertices parked at least once by the RCT.
  std::uint64_t delayed_vertices = 0;
  /// Parked vertices force-placed after the stream ended (cyclic waits).
  std::uint64_t forced_vertices = 0;
  /// Snapshots written during this run (0 when checkpointing is off).
  std::uint64_t checkpoints_written = 0;
  /// Stream position the run was resumed from (0 for a fresh run).
  std::uint64_t resumed_at = 0;
};

/// Runs the parallel partitioner over the stream. The stream is consumed
/// from its current position by the internal producer thread.
ParallelRunResult run_parallel(AdjacencyStream& stream, const PartitionConfig& config,
                               const ParallelOptions& options);

}  // namespace spnl
