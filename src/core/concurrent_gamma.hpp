// Thread-safe variant of GammaWindow for the parallel driver (Sec. V-B).
//
// Counter increments and reads are lock-free relaxed atomics — the paper
// explicitly tolerates heuristic noise from concurrent access (quality
// degradation bounded by the RCT optimization, Table V discussion). Window
// advancement (slot retirement) is serialized by a mutex and only ever moves
// forward; a late increment racing with a slot clear is benign heuristic
// loss, identical in kind to the windowing loss of Fig. 5.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "core/checkpoint.hpp"
#include "graph/types.hpp"

namespace spnl {

class ConcurrentGammaWindow {
 public:
  ConcurrentGammaWindow(VertexId num_vertices, PartitionId num_partitions,
                        std::uint32_t num_shards);

  /// Monotone forward slide; thread-safe.
  void advance_to(VertexId head);

  void increment(PartitionId p, VertexId u) {
    if (contains(u)) {
      counters_[static_cast<std::size_t>(slot_of(u)) * num_partitions_ + p]
          .fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Batched per-record increments for the parallel commit path: one base
  /// load for the whole neighbor list instead of one per neighbor, and
  /// consecutive duplicate neighbors (multigraph edges arrive sorted from
  /// the loaders) coalesced into a single fetch_add of the run length.
  /// Semantically identical to calling increment() per neighbor: slot_of is
  /// base-independent (u mod W), so an increment racing a concurrent slide
  /// lands on the same slot either way — the same benign heuristic race the
  /// class header documents.
  void increment_many(PartitionId p, std::span<const VertexId> out) {
    const VertexId b = base_.load(std::memory_order_relaxed);
    const VertexId w = window_size_;
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n;) {
      const VertexId u = out[i];
      std::uint32_t run = 1;
      while (i + run < n && out[i + run] == u) ++run;
      i += run;
      if (u < b || static_cast<std::uint64_t>(u) >= static_cast<std::uint64_t>(b) + w) {
        continue;
      }
      counters_[static_cast<std::size_t>(u % w) * num_partitions_ + p]
          .fetch_add(run, std::memory_order_relaxed);
    }
  }

  std::uint32_t get(PartitionId p, VertexId u) const {
    if (!contains(u)) return 0;
    return counters_[static_cast<std::size_t>(slot_of(u)) * num_partitions_ + p]
        .load(std::memory_order_relaxed);
  }

  VertexId window_size() const { return window_size_; }
  VertexId base() const { return base_.load(std::memory_order_relaxed); }
  PartitionId num_partitions() const { return num_partitions_; }

  /// Resource-governor degradation: shrink to `new_window` rows, keeping the
  /// covered ids' counters and releasing the rest of the storage. The
  /// backing array is REALLOCATED — callers must have quiesced every
  /// reader/writer first (the parallel driver holds its pipeline-wide
  /// exclusive lock, the same discipline save() documents).
  void shrink_to(VertexId new_window);

  std::size_t memory_footprint_bytes() const {
    return static_cast<std::size_t>(window_size_) * num_partitions_ *
           sizeof(std::atomic<std::uint32_t>);
  }

  /// Checkpoint support. Callers must quiesce all writers first (the
  /// parallel driver snapshots under its pipeline-wide exclusive lock).
  void save(StateWriter& out) const;
  void restore(StateReader& in);

 private:
  bool contains(VertexId u) const {
    const VertexId b = base_.load(std::memory_order_relaxed);
    return u >= b &&
           static_cast<std::uint64_t>(u) < static_cast<std::uint64_t>(b) + window_size_;
  }
  VertexId slot_of(VertexId u) const { return u % window_size_; }

  PartitionId num_partitions_;
  VertexId window_size_;
  std::atomic<VertexId> base_{0};
  std::mutex advance_mutex_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> counters_;
};

}  // namespace spnl
