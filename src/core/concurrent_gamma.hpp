// Thread-safe variant of GammaWindow for the parallel driver (Sec. V-B).
//
// Counter increments and reads are lock-free relaxed atomics — the paper
// explicitly tolerates heuristic noise from concurrent access (quality
// degradation bounded by the RCT optimization, Table V discussion). Window
// advancement (slot retirement) is serialized, but the hot path never waits
// for it: advance_to() publishes the requested head with a wait-free
// fetch-max CAS and only the worker that wins a try_lock performs the slide;
// losers return immediately and the winner re-checks the pending head after
// each pass so no request is stranded (bounded staleness of one commit,
// heuristic-only — termination never depends on the slide).
//
// Epoch-local Γ deltas: instead of fetch_add-ing the shared counter array
// per neighbor (a cache-line ping-pong between workers placing ids with
// colliding slots), each worker accumulates increments into a private
// GammaDeltaBuffer and publishes it as one merge — at epoch boundaries, when
// the buffer fills, and at every pipeline quiesce (in worker-index order, so
// merges are deterministic and checkpoints carry the full counts). Reads add
// the reader's OWN buffered row on top of the shared counters
// (read-your-own-writes); other workers' unpublished rows are invisible
// until their merge, the same bounded heuristic staleness as above. At M=1
// "shared + own delta" equals the eager total exactly (uint32 sums, exact in
// double), so routes stay byte-identical to the sequential oracle. Publish
// drops rows whose id retired from the window before the merge — eager
// increments to such ids would have been cleared by the slide anyway, so
// dropping preserves byte-identity; the read path filters by contains() for
// the same reason.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/checkpoint.hpp"
#include "graph/types.hpp"
#include "util/perf_stats.hpp"

namespace spnl {

/// Per-worker epoch-local Γ increment buffer: a small open-addressed table
/// keyed by vertex id, one row of K counts per id. Single-owner (no
/// synchronization) — the owning worker accumulates and reads it, and merges
/// it into the shared window via ConcurrentGammaWindow::publish().
class GammaDeltaBuffer {
 public:
  /// `rows` is the target number of distinct ids held between publishes;
  /// the table keeps load factor <= 1/2 so probes stay short.
  GammaDeltaBuffer(PartitionId num_partitions, std::size_t rows);

  /// Accumulate `run` into row (u, p). Returns false — without accumulating —
  /// when the buffer is at its load limit and u has no row yet; the caller
  /// publishes and retries (an empty buffer always accepts).
  bool add(PartitionId p, VertexId u, std::uint32_t run) {
    std::size_t idx = home(u);
    while (true) {
      const VertexId id = ids_[idx];
      if (id == u) {
        counts_[idx * k_ + p] += run;
        return true;
      }
      if (id == kInvalidVertex) {
        if (used_ >= limit_) return false;
        ids_[idx] = u;
        ++used_;
        counts_[idx * k_ + p] += run;  // row is all-zero between occupancies
        return true;
      }
      idx = (idx + 1) & mask_;
    }
  }

  /// The K buffered counts for u, or nullptr if u has no row. Valid until
  /// the next add()/clear().
  const std::uint32_t* row(VertexId u) const {
    std::size_t idx = home(u);
    while (true) {
      const VertexId id = ids_[idx];
      if (id == u) return counts_.data() + idx * k_;
      if (id == kInvalidVertex) return nullptr;
      idx = (idx + 1) & mask_;
    }
  }

  bool empty() const { return used_ == 0; }
  std::size_t used() const { return used_; }
  std::size_t capacity_rows() const { return limit_; }

  void clear();

 private:
  friend class ConcurrentGammaWindow;

  std::size_t home(VertexId u) const {
    // splitmix64 finalizer — same mixer the RCT shards use for probe homes.
    std::uint64_t x = static_cast<std::uint64_t>(u) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31)) & mask_;
  }

  PartitionId k_;
  std::size_t mask_;
  std::size_t limit_;
  std::size_t used_ = 0;
  std::vector<VertexId> ids_;          // kInvalidVertex = empty slot
  std::vector<std::uint32_t> counts_;  // slot-major, K per slot
};

class ConcurrentGammaWindow {
 public:
  ConcurrentGammaWindow(VertexId num_vertices, PartitionId num_partitions,
                        std::uint32_t num_shards);

  /// Monotone forward slide; thread-safe and non-blocking: publishes the
  /// head wait-free, then slides only if the serializing try_lock is won
  /// (contended cedes are counted, never waited on).
  void advance_to(VertexId head, PerfStats* perf = nullptr);

  void increment(PartitionId p, VertexId u) {
    if (contains(u)) {
      counters_[static_cast<std::size_t>(slot_of(u)) * num_partitions_ + p]
          .fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Batched per-record increments for the parallel commit path: one base
  /// load for the whole neighbor list instead of one per neighbor, and
  /// consecutive duplicate neighbors (multigraph edges arrive sorted from
  /// the loaders) coalesced into a single fetch_add of the run length.
  /// Semantically identical to calling increment() per neighbor: slot_of is
  /// base-independent (u mod W), so an increment racing a concurrent slide
  /// lands on the same slot either way — the same benign heuristic race the
  /// class header documents.
  void increment_many(PartitionId p, std::span<const VertexId> out) {
    const VertexId b = base_.load(std::memory_order_relaxed);
    const VertexId w = window_size_;
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n;) {
      const VertexId u = out[i];
      std::uint32_t run = 1;
      while (i + run < n && out[i + run] == u) ++run;
      i += run;
      if (u < b || static_cast<std::uint64_t>(u) >= static_cast<std::uint64_t>(b) + w) {
        continue;
      }
      counters_[static_cast<std::size_t>(u % w) * num_partitions_ + p]
          .fetch_add(run, std::memory_order_relaxed);
    }
  }

  /// Epoch-local variant of increment_many(): accumulate into the caller's
  /// private delta buffer instead of the shared counters. If the buffer is
  /// full it is published inline and the add retried — so the call never
  /// loses an increment. Out-of-window neighbors are skipped exactly as in
  /// increment_many().
  void increment_many_buffered(PartitionId p, std::span<const VertexId> out,
                               GammaDeltaBuffer& delta,
                               PerfStats* perf = nullptr) {
    const VertexId b = base_.load(std::memory_order_relaxed);
    const VertexId w = window_size_;
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n;) {
      const VertexId u = out[i];
      std::uint32_t run = 1;
      while (i + run < n && out[i + run] == u) ++run;
      i += run;
      if (u < b || static_cast<std::uint64_t>(u) >= static_cast<std::uint64_t>(b) + w) {
        continue;
      }
      if (!delta.add(p, u, run)) {
        publish(delta, perf);
        delta.add(p, u, run);  // empty buffer always accepts
      }
    }
  }

  /// Merge a delta buffer into the shared counters and clear it. Rows whose
  /// id has left the window are dropped (counted), preserving byte-identity
  /// with the eager path — those increments would have been erased by the
  /// slide. Lock-free (per-cell fetch_add); deterministic merges come from
  /// the CALLER's ordering discipline (the driver drains buffers in
  /// worker-index order at quiesce points).
  void publish(GammaDeltaBuffer& delta, PerfStats* perf = nullptr);

  std::uint32_t get(PartitionId p, VertexId u) const {
    if (!contains(u)) return 0;
    return counters_[static_cast<std::size_t>(slot_of(u)) * num_partitions_ + p]
        .load(std::memory_order_relaxed);
  }

  bool contains(VertexId u) const {
    const VertexId b = base_.load(std::memory_order_relaxed);
    return u >= b &&
           static_cast<std::uint64_t>(u) < static_cast<std::uint64_t>(b) + window_size_;
  }

  VertexId window_size() const { return window_size_; }
  VertexId base() const { return base_.load(std::memory_order_relaxed); }
  PartitionId num_partitions() const { return num_partitions_; }

  /// Resource-governor degradation: shrink to `new_window` rows, keeping the
  /// covered ids' counters and releasing the rest of the storage. The
  /// backing array is REALLOCATED — callers must have quiesced every
  /// reader/writer first (the parallel driver holds its pipeline-wide
  /// exclusive lock, the same discipline save() documents).
  void shrink_to(VertexId new_window);

  std::size_t memory_footprint_bytes() const {
    return static_cast<std::size_t>(window_size_) * num_partitions_ *
           sizeof(std::atomic<std::uint32_t>);
  }

  /// Checkpoint support. Callers must quiesce all writers first AND drain
  /// every delta buffer (the parallel driver publishes all buffers under its
  /// pipeline-wide exclusive lock before snapshotting), so the on-disk
  /// format is unchanged and carries the full counts.
  void save(StateWriter& out) const;
  void restore(StateReader& in);

 private:
  VertexId slot_of(VertexId u) const { return u % window_size_; }

  PartitionId num_partitions_;
  VertexId window_size_;
  std::atomic<VertexId> base_{0};
  /// Highest head any worker has requested; the slide lags it by at most one
  /// commit. Monotone via CAS fetch-max.
  std::atomic<VertexId> pending_head_{0};
  std::mutex advance_mutex_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> counters_;
};

}  // namespace spnl
