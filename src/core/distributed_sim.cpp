#include "core/distributed_sim.hpp"

#include <stdexcept>

#include "partition/range_partitioner.hpp"

namespace spnl {

namespace {

/// A worker's private view: a (possibly stale) snapshot of the global route
/// and loads, plus its own placements since the last sync.
struct WorkerView {
  std::vector<PartitionId> route;     // snapshot + own updates
  std::vector<VertexId> loads;        // snapshot + own updates
  std::vector<OwnedVertexRecord> slice;
  std::size_t cursor = 0;
};

PartitionId score_and_pick(const WorkerView& view, const OwnedVertexRecord& record,
                           PartitionId k, double capacity, const RangeTable& logical,
                           bool use_spnl) {
  std::vector<double> scores(k, 0.0);
  for (VertexId u : record.out) {
    if (u < view.route.size() && view.route[u] != kUnassigned) {
      scores[view.route[u]] += 1.0;
    } else if (use_spnl && u < logical.num_vertices()) {
      scores[logical.partition_of(u)] += 0.5;
    }
  }
  PartitionId best = kUnassigned;
  double best_score = 0.0;
  for (PartitionId p = 0; p < k; ++p) {
    if (static_cast<double>(view.loads[p]) >= capacity) continue;
    const double score = scores[p] * (1.0 - view.loads[p] / capacity);
    if (best == kUnassigned || score > best_score ||
        (score == best_score && view.loads[p] < view.loads[best])) {
      best = p;
      best_score = score;
    }
  }
  if (best == kUnassigned) {
    best = 0;
    for (PartitionId p = 1; p < k; ++p) {
      if (view.loads[p] < view.loads[best]) best = p;
    }
  }
  return best;
}

}  // namespace

DistributedSimResult distributed_stream_partition(
    AdjacencyStream& stream, const PartitionConfig& config,
    const DistributedSimOptions& options) {
  if (options.num_workers == 0) {
    throw std::invalid_argument("distributed_stream_partition: need >= 1 worker");
  }
  if (options.mode == DistributedMode::kPeriodicSync && options.sync_interval == 0) {
    throw std::invalid_argument("distributed_stream_partition: sync_interval >= 1");
  }
  const VertexId n = stream.num_vertices();
  const EdgeId m = stream.num_edges();
  const PartitionId k = config.num_partitions;
  const double capacity = partition_capacity(n, m, config);
  const RangeTable logical(n, k);
  const unsigned W = options.num_workers;

  // Slice the stream into W contiguous chunks (the decomposition of [34]).
  std::vector<WorkerView> workers(W);
  {
    std::vector<OwnedVertexRecord> all;
    all.reserve(n);
    while (auto record = stream.next()) all.push_back(OwnedVertexRecord::from(*record));
    const std::size_t per_worker = (all.size() + W - 1) / W;
    for (unsigned w = 0; w < W; ++w) {
      const std::size_t begin = std::min(all.size(), w * per_worker);
      const std::size_t end = std::min(all.size(), begin + per_worker);
      workers[w].slice.assign(std::make_move_iterator(all.begin() + begin),
                              std::make_move_iterator(all.begin() + end));
    }
  }

  DistributedSimResult result;
  result.route.assign(n, kUnassigned);
  std::vector<VertexId> global_loads(k, 0);

  auto snapshot = [&](WorkerView& view) {
    view.route = result.route;
    view.loads = global_loads;
  };
  for (auto& view : workers) snapshot(view);

  // Fresh (oracle) view used only to count stale-influenced decisions.
  WorkerView oracle;

  // Round-robin: one placement per worker per round — the deterministic
  // stand-in for "all workers run concurrently".
  VertexId since_sync = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (unsigned w = 0; w < W; ++w) {
      WorkerView& view = workers[w];
      if (view.cursor >= view.slice.size()) continue;
      progress = true;
      const OwnedVertexRecord& record = view.slice[view.cursor++];
      const PartitionId pid = score_and_pick(view, record, k, capacity, logical,
                                             options.use_spnl_scoring);
      // What would a perfectly fresh view have decided?
      oracle.route = result.route;
      oracle.loads = global_loads;
      if (score_and_pick(oracle, record, k, capacity, logical,
                         options.use_spnl_scoring) != pid) {
        ++result.stale_decisions;
      }

      // Commit globally; the worker's own view also learns its placement.
      result.route[record.id] = pid;
      ++global_loads[pid];
      view.route[record.id] = pid;
      ++view.loads[pid];

      if (options.mode == DistributedMode::kPeriodicSync &&
          ++since_sync >= options.sync_interval) {
        for (auto& other : workers) snapshot(other);
        since_sync = 0;
      }
    }
  }
  return result;
}

}  // namespace spnl
