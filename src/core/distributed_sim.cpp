#include "core/distributed_sim.hpp"

#include <stdexcept>

#include "partition/range_partitioner.hpp"
#include "util/rng.hpp"

namespace spnl {

namespace {

/// A worker's private view: a (possibly stale) snapshot of the global route
/// and loads, plus its own placements since the last sync.
struct WorkerView {
  std::vector<PartitionId> route;     // snapshot + own updates
  std::vector<VertexId> loads;        // snapshot + own updates
  std::vector<OwnedVertexRecord> slice;
  std::size_t cursor = 0;
  bool crashed = false;
};

PartitionId score_and_pick(const WorkerView& view, const OwnedVertexRecord& record,
                           PartitionId k, double capacity, const RangeTable& logical,
                           bool use_spnl) {
  std::vector<double> scores(k, 0.0);
  for (VertexId u : record.out) {
    if (u < view.route.size() && view.route[u] != kUnassigned) {
      scores[view.route[u]] += 1.0;
    } else if (use_spnl && u < logical.num_vertices()) {
      scores[logical.partition_of(u)] += 0.5;
    }
  }
  PartitionId best = kUnassigned;
  double best_score = 0.0;
  for (PartitionId p = 0; p < k; ++p) {
    if (static_cast<double>(view.loads[p]) >= capacity) continue;
    const double score = scores[p] * (1.0 - view.loads[p] / capacity);
    if (best == kUnassigned || score > best_score ||
        (score == best_score && view.loads[p] < view.loads[best])) {
      best = p;
      best_score = score;
    }
  }
  if (best == kUnassigned) {
    best = 0;
    for (PartitionId p = 1; p < k; ++p) {
      if (view.loads[p] < view.loads[best]) best = p;
    }
  }
  return best;
}

}  // namespace

DistributedSimResult distributed_stream_partition(
    AdjacencyStream& stream, const PartitionConfig& config,
    const DistributedSimOptions& options) {
  if (options.num_workers == 0) {
    throw std::invalid_argument("distributed_stream_partition: need >= 1 worker");
  }
  if (options.mode == DistributedMode::kPeriodicSync && options.sync_interval == 0) {
    throw std::invalid_argument("distributed_stream_partition: sync_interval >= 1");
  }
  for (double p : {options.faults.drop_sync_prob, options.faults.delay_sync_prob,
                   options.faults.duplicate_sync_prob}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(
          "distributed_stream_partition: fault probabilities must be in [0,1]");
    }
  }
  for (const WorkerCrash& crash : options.faults.crashes) {
    if (crash.worker >= options.num_workers) {
      throw std::invalid_argument(
          "distributed_stream_partition: crash names an unknown worker");
    }
  }
  for (const WorkerStall& stall : options.faults.stalls) {
    if (stall.worker >= options.num_workers) {
      throw std::invalid_argument(
          "distributed_stream_partition: stall names an unknown worker");
    }
  }
  const VertexId n = stream.num_vertices();
  const EdgeId m = stream.num_edges();
  const PartitionId k = config.num_partitions;
  const double capacity = partition_capacity(n, m, config);
  const RangeTable logical(n, k);
  const unsigned W = options.num_workers;

  // Slice the stream into W contiguous chunks (the decomposition of [34]).
  std::vector<WorkerView> workers(W);
  {
    std::vector<OwnedVertexRecord> all;
    all.reserve(n);
    while (auto record = stream.next()) all.push_back(OwnedVertexRecord::from(*record));
    const std::size_t per_worker = (all.size() + W - 1) / W;
    for (unsigned w = 0; w < W; ++w) {
      const std::size_t begin = std::min(all.size(), w * per_worker);
      const std::size_t end = std::min(all.size(), begin + per_worker);
      workers[w].slice.assign(std::make_move_iterator(all.begin() + begin),
                              std::make_move_iterator(all.begin() + end));
    }
  }

  DistributedSimResult result;
  result.route.assign(n, kUnassigned);
  std::vector<VertexId> global_loads(k, 0);

  auto snapshot = [&](WorkerView& view) {
    view.route = result.route;
    view.loads = global_loads;
  };
  for (auto& view : workers) snapshot(view);

  // One-epoch-old copy of the global state, delivered instead of the fresh
  // snapshot when a sync message is "delayed". Refreshed at each sync point.
  std::vector<PartitionId> prev_route = result.route;
  std::vector<VertexId> prev_loads = global_loads;

  Rng fault_rng(options.faults.seed);
  std::vector<char> crash_fired(options.faults.crashes.size(), 0);
  std::vector<char> stall_fired(options.faults.stalls.size(), 0);
  std::vector<std::uint64_t> stall_remaining(W, 0);
  std::uint64_t total_placements = 0;

  // Crash handling: fire every due crash, then dispose of the dead workers'
  // remaining slices according to the recovery policy.
  auto apply_due_crashes = [&] {
    for (std::size_t c = 0; c < options.faults.crashes.size(); ++c) {
      const WorkerCrash& crash = options.faults.crashes[c];
      if (crash_fired[c] || total_placements < crash.at_placement) continue;
      WorkerView& victim = workers[crash.worker];
      crash_fired[c] = 1;
      if (victim.crashed) continue;  // already dead from an earlier event
      victim.crashed = true;
      ++result.worker_crashes;
      const std::size_t remaining = victim.slice.size() - victim.cursor;

      WorkerView* survivor = nullptr;
      if (options.recovery == RecoveryPolicy::kReassign) {
        for (unsigned w = 0; w < W; ++w) {
          if (!workers[w].crashed) {
            survivor = &workers[w];
            break;
          }
        }
      }
      if (survivor != nullptr && remaining > 0) {
        // Reassign the slice remainder; the survivor rebuilds its view from
        // the committed global route (the durable state a real system would
        // recover from), discarding whatever staleness it had accumulated.
        survivor->slice.insert(survivor->slice.end(),
                               std::make_move_iterator(victim.slice.begin() +
                                                       static_cast<std::ptrdiff_t>(
                                                           victim.cursor)),
                               std::make_move_iterator(victim.slice.end()));
        snapshot(*survivor);
        result.recovered_placements += remaining;
      } else {
        result.lost_placements += remaining;
      }
      victim.slice.clear();
      victim.cursor = 0;
    }
  };

  // Stalls accumulate skip-turns on their victim once due (crashed workers
  // cannot stall — they are already gone).
  auto apply_due_stalls = [&] {
    for (std::size_t s = 0; s < options.faults.stalls.size(); ++s) {
      const WorkerStall& stall = options.faults.stalls[s];
      if (stall_fired[s] || total_placements < stall.at_placement) continue;
      stall_fired[s] = 1;
      if (workers[stall.worker].crashed) continue;
      stall_remaining[stall.worker] += stall.for_placements;
      ++result.worker_stalls;
    }
  };

  // Sync delivery with seeded message faults. RNG draws happen in a fixed
  // (worker-index) order regardless of outcome, keeping runs replayable.
  auto deliver_sync = [&](WorkerView& view) {
    if (!options.faults.has_sync_faults()) {
      snapshot(view);
      return;
    }
    const double roll = fault_rng.next_double();
    const double drop = options.faults.drop_sync_prob;
    const double delay = options.faults.delay_sync_prob;
    if (roll < drop) {
      ++result.dropped_syncs;  // refresh lost: view keeps aging
    } else if (roll < drop + delay) {
      view.route = prev_route;  // one-epoch-old snapshot arrives instead
      view.loads = prev_loads;
      ++result.delayed_syncs;
    } else {
      snapshot(view);
      if (fault_rng.next_double() < options.faults.duplicate_sync_prob) {
        snapshot(view);  // idempotent re-application of the same snapshot
        ++result.duplicated_syncs;
      }
    }
  };

  // Fresh (oracle) view used only to count stale-influenced decisions.
  WorkerView oracle;

  // Round-robin: one placement per worker per round — the deterministic
  // stand-in for "all workers run concurrently".
  VertexId since_sync = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    apply_due_crashes();
    apply_due_stalls();
    // Livelock guard: when every live worker with remaining work is stalled,
    // the least-index one is forced to proceed this round anyway.
    unsigned forced = W;
    {
      bool any_unstalled = false;
      unsigned least_stalled = W;
      for (unsigned w = 0; w < W; ++w) {
        if (workers[w].crashed || workers[w].cursor >= workers[w].slice.size()) {
          continue;
        }
        if (stall_remaining[w] == 0) {
          any_unstalled = true;
          break;
        }
        if (least_stalled == W) least_stalled = w;
      }
      if (!any_unstalled) forced = least_stalled;
    }
    for (unsigned w = 0; w < W; ++w) {
      WorkerView& view = workers[w];
      if (view.crashed || view.cursor >= view.slice.size()) continue;
      if (stall_remaining[w] > 0) {
        --stall_remaining[w];  // the forced turn also burns a stall tick
        if (w != forced) {
          ++result.stalled_turns;
          progress = true;  // the stall drains, so the loop still terminates
          continue;
        }
      }
      progress = true;
      const OwnedVertexRecord& record = view.slice[view.cursor++];
      const PartitionId pid = score_and_pick(view, record, k, capacity, logical,
                                             options.use_spnl_scoring);
      // What would a perfectly fresh view have decided?
      oracle.route = result.route;
      oracle.loads = global_loads;
      if (score_and_pick(oracle, record, k, capacity, logical,
                         options.use_spnl_scoring) != pid) {
        ++result.stale_decisions;
      }

      // Commit globally; the worker's own view also learns its placement.
      result.route[record.id] = pid;
      ++global_loads[pid];
      view.route[record.id] = pid;
      ++view.loads[pid];
      ++total_placements;
      apply_due_crashes();
      apply_due_stalls();

      if (options.mode == DistributedMode::kPeriodicSync &&
          ++since_sync >= options.sync_interval) {
        for (auto& other : workers) {
          if (!other.crashed) deliver_sync(other);
        }
        prev_route = result.route;
        prev_loads = global_loads;
        since_sync = 0;
      }
    }
  }
  return result;
}

}  // namespace spnl
