#include "core/concurrent_gamma.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

GammaDeltaBuffer::GammaDeltaBuffer(PartitionId num_partitions, std::size_t rows)
    : k_(num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("GammaDeltaBuffer: K must be >= 1");
  }
  // Table is 2x the requested row budget so load factor stays <= 1/2.
  const std::size_t slots = next_pow2(std::max<std::size_t>(rows, 1) * 2);
  mask_ = slots - 1;
  limit_ = slots / 2;
  ids_.assign(slots, kInvalidVertex);
  counts_.assign(slots * k_, 0);
}

void GammaDeltaBuffer::clear() {
  if (used_ == 0) return;
  for (std::size_t idx = 0; idx <= mask_; ++idx) {
    if (ids_[idx] == kInvalidVertex) continue;
    ids_[idx] = kInvalidVertex;
    std::fill_n(counts_.begin() + static_cast<std::ptrdiff_t>(idx * k_), k_, 0u);
  }
  used_ = 0;
}

ConcurrentGammaWindow::ConcurrentGammaWindow(VertexId num_vertices,
                                             PartitionId num_partitions,
                                             std::uint32_t num_shards)
    : num_partitions_(num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("ConcurrentGammaWindow: K must be >= 1");
  }
  if (num_shards == 0) {
    throw std::invalid_argument("ConcurrentGammaWindow: X must be >= 1");
  }
  const VertexId n = std::max<VertexId>(num_vertices, 1);
  window_size_ = (n + num_shards - 1) / num_shards;
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  counters_ = std::make_unique<std::atomic<std::uint32_t>[]>(total);
  for (std::size_t i = 0; i < total; ++i) {
    counters_[i].store(0, std::memory_order_relaxed);
  }
}

void ConcurrentGammaWindow::advance_to(VertexId head, PerfStats* perf) {
  // Fast path: the slide (or a pending request) already covers this head.
  if (head <= base_.load(std::memory_order_relaxed)) return;

  // Publish the request wait-free: monotone fetch-max via CAS. release pairs
  // with the acquire reload in the slide loop below, so the winner of the
  // try_lock observes every published head.
  VertexId cur = pending_head_.load(std::memory_order_relaxed);
  while (cur < head) {
    if (pending_head_.compare_exchange_weak(cur, head, std::memory_order_release,
                                            std::memory_order_relaxed)) {
      break;
    }
    // cur was reloaded by the failed CAS; loop re-tests cur < head.
    if (perf != nullptr) perf->add_count(PerfCounter::kGammaHeadCasRetries, 1);
  }

  // Only one worker slides at a time; everyone else cedes without blocking.
  // The ceded request is picked up either by the current holder's re-check
  // below or by the next advance_to() call — bounded staleness, and only of
  // the heuristic Γ estimate (termination never waits on the slide).
  std::unique_lock lock(advance_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (perf != nullptr) perf->add_count(PerfCounter::kGammaAdvanceContended, 1);
    return;
  }

  auto clear_rows = [this](VertexId first_slot, VertexId rows) {
    auto* begin = counters_.get() +
                  static_cast<std::size_t>(first_slot) * num_partitions_;
    const std::size_t count = static_cast<std::size_t>(rows) * num_partitions_;
    for (std::size_t i = 0; i < count; ++i) {
      begin[i].store(0, std::memory_order_relaxed);
    }
  };

  // Slide to the latest published request, re-checking after each pass so a
  // head published while we slid (by a worker whose try_lock lost against
  // ours) is not stranded until the next call.
  while (true) {
    const VertexId target = pending_head_.load(std::memory_order_acquire);
    const VertexId base = base_.load(std::memory_order_relaxed);
    if (target <= base) break;
    const VertexId steps = target - base;
    if (steps >= window_size_) {
      clear_rows(0, window_size_);
    } else {
      // Retiring ids [base, target) occupy at most two contiguous slot runs
      // (the ring wraps at W): clear them as ranges instead of per-id modulo
      // walks.
      const VertexId first = slot_of(base);
      const VertexId head_rows = std::min<VertexId>(steps, window_size_ - first);
      clear_rows(first, head_rows);
      if (steps > head_rows) clear_rows(0, steps - head_rows);
    }
    base_.store(target, std::memory_order_relaxed);
  }
}

void ConcurrentGammaWindow::publish(GammaDeltaBuffer& delta, PerfStats* perf) {
  if (delta.empty()) return;
  PerfScope scope(perf, PerfStage::kGammaPublish);
  const VertexId b = base_.load(std::memory_order_relaxed);
  const VertexId w = window_size_;
  std::uint64_t cells = 0;
  std::uint64_t dropped = 0;
  for (std::size_t idx = 0; idx <= delta.mask_; ++idx) {
    const VertexId u = delta.ids_[idx];
    if (u == kInvalidVertex) continue;
    const std::uint32_t* row = delta.counts_.data() + idx * delta.k_;
    // Membership re-check at merge time: a row whose id retired between
    // buffering and publish is dropped — the eager path's increments to it
    // would have been cleared by the slide, so dropping is byte-identical.
    if (u < b ||
        static_cast<std::uint64_t>(u) >= static_cast<std::uint64_t>(b) + w) {
      for (PartitionId p = 0; p < delta.k_; ++p) {
        if (row[p] != 0) ++dropped;
      }
      continue;
    }
    auto* dest = counters_.get() + static_cast<std::size_t>(u % w) * num_partitions_;
    for (PartitionId p = 0; p < delta.k_; ++p) {
      if (row[p] == 0) continue;
      dest[p].fetch_add(row[p], std::memory_order_relaxed);
      ++cells;
    }
  }
  delta.clear();
  if (perf != nullptr) {
    perf->add_count(PerfCounter::kGammaDeltaPublishes, 1);
    perf->add_count(PerfCounter::kGammaDeltaCells, cells);
    if (dropped != 0) perf->add_count(PerfCounter::kGammaDeltaDropped, dropped);
  }
}

void ConcurrentGammaWindow::shrink_to(VertexId new_window) {
  if (new_window == 0) new_window = 1;
  std::lock_guard lock(advance_mutex_);
  if (new_window >= window_size_) return;
  const VertexId base = base_.load(std::memory_order_relaxed);
  auto counters =
      std::make_unique<std::atomic<std::uint32_t>[]>(
          static_cast<std::size_t>(new_window) * num_partitions_);
  const std::size_t total = static_cast<std::size_t>(new_window) * num_partitions_;
  for (std::size_t i = 0; i < total; ++i) {
    counters[i].store(0, std::memory_order_relaxed);
  }
  for (VertexId i = 0; i < new_window; ++i) {
    const VertexId id = base + i;
    const std::size_t old_row =
        static_cast<std::size_t>(slot_of(id)) * num_partitions_;
    const std::size_t new_row =
        static_cast<std::size_t>(id % new_window) * num_partitions_;
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      counters[new_row + p].store(
          counters_[old_row + p].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  counters_ = std::move(counters);
  window_size_ = new_window;
}

void ConcurrentGammaWindow::save(StateWriter& out) const {
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  std::vector<std::uint32_t> counters(total);
  for (std::size_t i = 0; i < total; ++i) {
    counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  out.put_u32(num_partitions_);
  out.put_u32(window_size_);
  out.put_u32(base_.load(std::memory_order_relaxed));
  out.put_vec(counters);
}

void ConcurrentGammaWindow::restore(StateReader& in) {
  in.expect_u32(num_partitions_, "gamma partition count");
  // Adopt a governor-degraded (smaller) snapshot window; see
  // GammaWindow::restore for the rationale.
  const VertexId window = in.get_u32();
  if (window > window_size_) {
    throw CheckpointError("gamma restore: window size mismatch");
  }
  if (window < window_size_) shrink_to(window);
  const VertexId base = in.get_u32();
  const auto counters = in.get_vec<std::uint32_t>();
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  if (counters.size() != total) {
    throw CheckpointError("gamma restore: counter table size mismatch");
  }
  base_.store(base, std::memory_order_relaxed);
  pending_head_.store(base, std::memory_order_relaxed);
  for (std::size_t i = 0; i < total; ++i) {
    counters_[i].store(counters[i], std::memory_order_relaxed);
  }
}

}  // namespace spnl
