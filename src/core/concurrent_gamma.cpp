#include "core/concurrent_gamma.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

ConcurrentGammaWindow::ConcurrentGammaWindow(VertexId num_vertices,
                                             PartitionId num_partitions,
                                             std::uint32_t num_shards)
    : num_partitions_(num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("ConcurrentGammaWindow: K must be >= 1");
  }
  if (num_shards == 0) {
    throw std::invalid_argument("ConcurrentGammaWindow: X must be >= 1");
  }
  const VertexId n = std::max<VertexId>(num_vertices, 1);
  window_size_ = (n + num_shards - 1) / num_shards;
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  counters_ = std::make_unique<std::atomic<std::uint32_t>[]>(total);
  for (std::size_t i = 0; i < total; ++i) {
    counters_[i].store(0, std::memory_order_relaxed);
  }
}

void ConcurrentGammaWindow::advance_to(VertexId head) {
  // Cheap racy pre-check; the mutex serializes actual movement.
  if (head <= base_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(advance_mutex_);
  VertexId base = base_.load(std::memory_order_relaxed);
  if (head <= base) return;
  const VertexId steps = head - base;
  auto clear_rows = [this](VertexId first_slot, VertexId rows) {
    auto* begin = counters_.get() +
                  static_cast<std::size_t>(first_slot) * num_partitions_;
    const std::size_t count = static_cast<std::size_t>(rows) * num_partitions_;
    for (std::size_t i = 0; i < count; ++i) {
      begin[i].store(0, std::memory_order_relaxed);
    }
  };
  if (steps >= window_size_) {
    clear_rows(0, window_size_);
  } else {
    // Retiring ids [base, head) occupy at most two contiguous slot runs (the
    // ring wraps at W): clear them as ranges instead of per-id modulo walks.
    const VertexId first = slot_of(base);
    const VertexId head_rows = std::min<VertexId>(steps, window_size_ - first);
    clear_rows(first, head_rows);
    if (steps > head_rows) clear_rows(0, steps - head_rows);
  }
  base_.store(head, std::memory_order_relaxed);
}

void ConcurrentGammaWindow::shrink_to(VertexId new_window) {
  if (new_window == 0) new_window = 1;
  std::lock_guard lock(advance_mutex_);
  if (new_window >= window_size_) return;
  const VertexId base = base_.load(std::memory_order_relaxed);
  auto counters =
      std::make_unique<std::atomic<std::uint32_t>[]>(
          static_cast<std::size_t>(new_window) * num_partitions_);
  const std::size_t total = static_cast<std::size_t>(new_window) * num_partitions_;
  for (std::size_t i = 0; i < total; ++i) {
    counters[i].store(0, std::memory_order_relaxed);
  }
  for (VertexId i = 0; i < new_window; ++i) {
    const VertexId id = base + i;
    const std::size_t old_row =
        static_cast<std::size_t>(slot_of(id)) * num_partitions_;
    const std::size_t new_row =
        static_cast<std::size_t>(id % new_window) * num_partitions_;
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      counters[new_row + p].store(
          counters_[old_row + p].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  counters_ = std::move(counters);
  window_size_ = new_window;
}

void ConcurrentGammaWindow::save(StateWriter& out) const {
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  std::vector<std::uint32_t> counters(total);
  for (std::size_t i = 0; i < total; ++i) {
    counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  out.put_u32(num_partitions_);
  out.put_u32(window_size_);
  out.put_u32(base_.load(std::memory_order_relaxed));
  out.put_vec(counters);
}

void ConcurrentGammaWindow::restore(StateReader& in) {
  in.expect_u32(num_partitions_, "gamma partition count");
  // Adopt a governor-degraded (smaller) snapshot window; see
  // GammaWindow::restore for the rationale.
  const VertexId window = in.get_u32();
  if (window > window_size_) {
    throw CheckpointError("gamma restore: window size mismatch");
  }
  if (window < window_size_) shrink_to(window);
  const VertexId base = in.get_u32();
  const auto counters = in.get_vec<std::uint32_t>();
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  if (counters.size() != total) {
    throw CheckpointError("gamma restore: counter table size mismatch");
  }
  base_.store(base, std::memory_order_relaxed);
  for (std::size_t i = 0; i < total; ++i) {
    counters_[i].store(counters[i], std::memory_order_relaxed);
  }
}

}  // namespace spnl
