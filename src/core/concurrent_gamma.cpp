#include "core/concurrent_gamma.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

ConcurrentGammaWindow::ConcurrentGammaWindow(VertexId num_vertices,
                                             PartitionId num_partitions,
                                             std::uint32_t num_shards)
    : num_partitions_(num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("ConcurrentGammaWindow: K must be >= 1");
  }
  if (num_shards == 0) {
    throw std::invalid_argument("ConcurrentGammaWindow: X must be >= 1");
  }
  const VertexId n = std::max<VertexId>(num_vertices, 1);
  window_size_ = (n + num_shards - 1) / num_shards;
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  counters_ = std::make_unique<std::atomic<std::uint32_t>[]>(total);
  for (std::size_t i = 0; i < total; ++i) {
    counters_[i].store(0, std::memory_order_relaxed);
  }
}

void ConcurrentGammaWindow::advance_to(VertexId head) {
  // Cheap racy pre-check; the mutex serializes actual movement.
  if (head <= base_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(advance_mutex_);
  VertexId base = base_.load(std::memory_order_relaxed);
  if (head <= base) return;
  const VertexId steps = head - base;
  auto clear_rows = [this](VertexId first_slot, VertexId rows) {
    auto* begin = counters_.get() +
                  static_cast<std::size_t>(first_slot) * num_partitions_;
    const std::size_t count = static_cast<std::size_t>(rows) * num_partitions_;
    for (std::size_t i = 0; i < count; ++i) {
      begin[i].store(0, std::memory_order_relaxed);
    }
  };
  if (steps >= window_size_) {
    clear_rows(0, window_size_);
  } else {
    // Retiring ids [base, head) occupy at most two contiguous slot runs (the
    // ring wraps at W): clear them as ranges instead of per-id modulo walks.
    const VertexId first = slot_of(base);
    const VertexId head_rows = std::min<VertexId>(steps, window_size_ - first);
    clear_rows(first, head_rows);
    if (steps > head_rows) clear_rows(0, steps - head_rows);
  }
  base_.store(head, std::memory_order_relaxed);
}

void ConcurrentGammaWindow::save(StateWriter& out) const {
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  std::vector<std::uint32_t> counters(total);
  for (std::size_t i = 0; i < total; ++i) {
    counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  out.put_u32(num_partitions_);
  out.put_u32(window_size_);
  out.put_u32(base_.load(std::memory_order_relaxed));
  out.put_vec(counters);
}

void ConcurrentGammaWindow::restore(StateReader& in) {
  in.expect_u32(num_partitions_, "gamma partition count");
  in.expect_u32(window_size_, "gamma window size");
  const VertexId base = in.get_u32();
  const auto counters = in.get_vec<std::uint32_t>();
  const std::size_t total = static_cast<std::size_t>(window_size_) * num_partitions_;
  if (counters.size() != total) {
    throw CheckpointError("gamma restore: counter table size mismatch");
  }
  base_.store(base, std::memory_order_relaxed);
  for (std::size_t i = 0; i < total; ++i) {
    counters_[i].store(counters[i], std::memory_order_relaxed);
  }
}

}  // namespace spnl
