#include "core/gamma_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/memory.hpp"

namespace spnl {

GammaWindow::GammaWindow(VertexId num_vertices, PartitionId num_partitions,
                         std::uint32_t num_shards, SlideMode mode)
    : num_vertices_(num_vertices),
      num_partitions_(num_partitions),
      num_shards_(num_shards),
      mode_(mode) {
  if (num_partitions == 0) throw std::invalid_argument("GammaWindow: K must be >= 1");
  if (num_shards == 0) throw std::invalid_argument("GammaWindow: X must be >= 1");
  const VertexId n = std::max<VertexId>(num_vertices, 1);
  window_size_ = (n + num_shards - 1) / num_shards;  // ceil(n/X)
  if (window_size_ == 0) window_size_ = 1;
  counters_.assign(static_cast<std::size_t>(window_size_) * num_partitions_, 0);
}

std::uint32_t GammaWindow::recommended_shards(VertexId num_vertices, PartitionId k,
                                              double alpha, double beta) {
  const double by_parts = alpha * k;
  const double by_size = static_cast<double>(num_vertices) / (beta * k);
  const double x = std::floor(std::min(by_parts, by_size));
  // Clamp into uint32 range before the cast: extreme alpha/beta (or a tiny
  // beta*k product) push x past 2^32, where the bare double -> uint32 cast is
  // undefined behaviour. The !(x > 1) form also routes NaN (e.g. 0/0 from
  // num_vertices == 0 with beta == 0) to the safe full-table answer.
  if (!(x > 1.0)) return 1;
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::uint32_t>::max());
  if (x >= kMax) return std::numeric_limits<std::uint32_t>::max();
  return static_cast<std::uint32_t>(x);
}

void GammaWindow::advance_general(VertexId head) {
  if (mode_ == SlideMode::kCoarse) {
    // Shard-by-shard: the window only moves when the head crosses into the
    // next shard, and then jumps to that shard's start. Mid-shard arrivals
    // keep the stale window — including after the jump discarded part of
    // the shard's future rows (the paper's "sharp sliding" accuracy loss).
    head = head / window_size_ * window_size_;
  }
  if (head <= base_) return;
  const VertexId steps = head - base_;
  if (steps >= window_size_) {
    // The whole window is retired: one bulk clear.
    std::memset(counters_.data(), 0, counters_.size() * sizeof(std::uint32_t));
    base_ = head;
    base_slot_ = slot_of(base_);
    return;
  }
  // The retiring ids [base_, head) occupy the contiguous ring-slot run
  // [base_ % W, base_ % W + steps), wrapping at W — at most two contiguous
  // row ranges, each cleared with one memset (their slots are reused by the
  // future ids id + W entering the window).
  const VertexId first = base_slot_;
  const VertexId head_rows = std::min<VertexId>(steps, window_size_ - first);
  std::memset(counters_.data() + static_cast<std::size_t>(first) * num_partitions_,
              0,
              static_cast<std::size_t>(head_rows) * num_partitions_ *
                  sizeof(std::uint32_t));
  const VertexId wrapped_rows = steps - head_rows;
  if (wrapped_rows > 0) {
    std::memset(counters_.data(), 0,
                static_cast<std::size_t>(wrapped_rows) * num_partitions_ *
                    sizeof(std::uint32_t));
  }
  base_ = head;
  // One modulo per slide instead of one per out-neighbor: row_offset()
  // derives any in-window slot from base_slot_ with an add and a compare.
  base_slot_ = first + steps;
  if (base_slot_ >= window_size_) base_slot_ -= window_size_;
}

void GammaWindow::shrink_to(VertexId new_window) {
  if (new_window == 0) new_window = 1;
  if (new_window >= window_size_) return;
  // Rebuild into a fresh right-sized vector (assign() would keep the old
  // capacity and the footprint would not actually drop). Ids still covered
  // by the smaller window keep their counters; [base+new_W, base+old_W) is
  // dropped — the same loss as having streamed with a larger X all along.
  std::vector<std::uint32_t> counters(
      static_cast<std::size_t>(new_window) * num_partitions_, 0);
  const std::uint64_t covered =
      std::min<std::uint64_t>(new_window,
                              static_cast<std::uint64_t>(window_size_));
  for (std::uint64_t i = 0; i < covered; ++i) {
    const VertexId id = base_ + static_cast<VertexId>(i);
    const std::size_t old_row = row_offset(id);
    const std::size_t new_row =
        static_cast<std::size_t>(id % new_window) * num_partitions_;
    std::memcpy(counters.data() + new_row, counters_.data() + old_row,
                num_partitions_ * sizeof(std::uint32_t));
  }
  counters_.swap(counters);
  window_size_ = new_window;
  base_slot_ = slot_of(base_);
  // Keep the W = ceil(n/X) relationship coherent for save/restore guards.
  const VertexId n = std::max<VertexId>(num_vertices_, 1);
  num_shards_ = (n + window_size_ - 1) / window_size_;
}

std::size_t GammaWindow::memory_footprint_bytes() const {
  return vector_bytes(counters_);
}

void GammaWindow::save(StateWriter& out) const {
  out.put_u32(num_vertices_);
  out.put_u32(num_partitions_);
  out.put_u32(num_shards_);
  out.put_u32(static_cast<std::uint32_t>(mode_));
  out.put_u32(window_size_);
  out.put_u32(base_);
  out.put_vec(counters_);
}

void GammaWindow::restore(StateReader& in) {
  in.expect_u32(num_vertices_, "gamma vertex count");
  in.expect_u32(num_partitions_, "gamma partition count");
  const std::uint32_t shards = in.get_u32();
  const auto mode = static_cast<SlideMode>(in.get_u32());
  const VertexId window = in.get_u32();
  // A governor-degraded snapshot has a smaller window (and possibly coarse
  // mode) than this freshly constructed instance: adopt the degraded shape
  // so resume continues exactly where the degraded run left off. A LARGER
  // snapshot window cannot fit and is a real configuration mismatch.
  if (window > window_size_) {
    throw CheckpointError("gamma restore: window size mismatch");
  }
  if (window < window_size_) shrink_to(window);
  if (shards != num_shards_) {
    throw CheckpointError("gamma restore: shard count mismatch");
  }
  mode_ = mode;
  base_ = in.get_u32();
  base_slot_ = slot_of(base_);
  auto counters = in.get_vec<std::uint32_t>();
  if (counters.size() != counters_.size()) {
    throw CheckpointError("gamma restore: counter table size mismatch");
  }
  counters_ = std::move(counters);
}

}  // namespace spnl
