#include "core/gamma_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/memory.hpp"

namespace spnl {

GammaWindow::GammaWindow(VertexId num_vertices, PartitionId num_partitions,
                         std::uint32_t num_shards, SlideMode mode)
    : num_vertices_(num_vertices),
      num_partitions_(num_partitions),
      num_shards_(num_shards),
      mode_(mode) {
  if (num_partitions == 0) throw std::invalid_argument("GammaWindow: K must be >= 1");
  if (num_shards == 0) throw std::invalid_argument("GammaWindow: X must be >= 1");
  const VertexId n = std::max<VertexId>(num_vertices, 1);
  window_size_ = (n + num_shards - 1) / num_shards;  // ceil(n/X)
  if (window_size_ == 0) window_size_ = 1;
  counters_.assign(static_cast<std::size_t>(window_size_) * num_partitions_, 0);
}

std::uint32_t GammaWindow::recommended_shards(VertexId num_vertices, PartitionId k,
                                              double alpha, double beta) {
  const double by_parts = alpha * k;
  const double by_size = static_cast<double>(num_vertices) / (beta * k);
  const double x = std::min(by_parts, by_size);
  return static_cast<std::uint32_t>(std::max(1.0, std::floor(x)));
}

void GammaWindow::advance_to(VertexId head) {
  if (mode_ == SlideMode::kCoarse) {
    // Shard-by-shard: the window only moves when the head crosses into the
    // next shard, and then jumps to that shard's start. Mid-shard arrivals
    // keep the stale window — including after the jump discarded part of
    // the shard's future rows (the paper's "sharp sliding" accuracy loss).
    head = head / window_size_ * window_size_;
  }
  if (head <= base_) return;
  const VertexId steps = head - base_;
  if (steps >= window_size_) {
    // The whole window is retired: one bulk clear.
    std::fill(counters_.begin(), counters_.end(), 0u);
    base_ = head;
    return;
  }
  for (VertexId id = base_; id < head; ++id) {
    // Slot of the retiring id `id` is reused by future id `id + W`: zero it.
    auto* slot = counters_.data() +
                 static_cast<std::size_t>(slot_of(id)) * num_partitions_;
    std::fill(slot, slot + num_partitions_, 0u);
  }
  base_ = head;
}

std::size_t GammaWindow::memory_footprint_bytes() const {
  return vector_bytes(counters_);
}

void GammaWindow::save(StateWriter& out) const {
  out.put_u32(num_vertices_);
  out.put_u32(num_partitions_);
  out.put_u32(num_shards_);
  out.put_u32(static_cast<std::uint32_t>(mode_));
  out.put_u32(window_size_);
  out.put_u32(base_);
  out.put_vec(counters_);
}

void GammaWindow::restore(StateReader& in) {
  in.expect_u32(num_vertices_, "gamma vertex count");
  in.expect_u32(num_partitions_, "gamma partition count");
  in.expect_u32(num_shards_, "gamma shard count");
  in.expect_u32(static_cast<std::uint32_t>(mode_), "gamma slide mode");
  in.expect_u32(window_size_, "gamma window size");
  base_ = in.get_u32();
  auto counters = in.get_vec<std::uint32_t>();
  if (counters.size() != counters_.size()) {
    throw CheckpointError("gamma restore: counter table size mismatch");
  }
  counters_ = std::move(counters);
}

}  // namespace spnl
