#include "core/spn.hpp"

#include <stdexcept>

namespace spnl {

namespace {
std::uint32_t resolve_shards(std::uint32_t requested, VertexId n, PartitionId k) {
  return requested == 0 ? GammaWindow::recommended_shards(n, k) : requested;
}
}  // namespace

SpnPartitioner::SpnPartitioner(VertexId num_vertices, EdgeId num_edges,
                               const PartitionConfig& config, SpnOptions options)
    : GreedyStreamingBase(num_vertices, num_edges, config),
      options_(options),
      gamma_(num_vertices, config.num_partitions,
             resolve_shards(options.num_shards, num_vertices, config.num_partitions),
             options.slide) {
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    throw std::invalid_argument("SPN: lambda must be in [0,1]");
  }
}

PartitionId SpnPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId k = num_partitions();
  const double lambda = options_.lambda;

  // Fine-grained slide: the window now starts at the arriving vertex, so its
  // own Γ row is still live for the in-neighbor estimate below.
  gamma_.advance_to(v);

  // Out-neighbor term: distribution of already placed out-neighbors.
  scores_.assign(k, 0.0);
  for (VertexId u : out) {
    if (u < route_.size() && route_[u] != kUnassigned) {
      scores_[route_[u]] += lambda;
    }
  }

  // In-neighbor expectation term.
  if (options_.estimator == InNeighborEstimator::kSelf) {
    const auto row = gamma_.row(v);
    for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
      scores_[i] += (1.0 - lambda) * row[i];
    }
  } else {
    for (VertexId u : out) {
      const auto row = gamma_.row(u);
      for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
        scores_[i] += (1.0 - lambda) * row[i];
      }
    }
  }

  for (PartitionId i = 0; i < k; ++i) scores_[i] *= remaining_weight(i);
  const PartitionId pid = pick_best(scores_);
  commit(v, out, pid);

  // Algorithm 1, lines 5-7: placing v raises P_pid's expectation for every
  // out-neighbor of v (counts for retired/out-of-window ids are dropped).
  for (VertexId u : out) gamma_.increment(pid, u);
  return pid;
}

std::size_t SpnPartitioner::memory_footprint_bytes() const {
  return GreedyStreamingBase::memory_footprint_bytes() +
         gamma_.memory_footprint_bytes();
}

void SpnPartitioner::save_state(StateWriter& out) const {
  GreedyStreamingBase::save_state(out);
  gamma_.save(out);
}

void SpnPartitioner::restore_state(StateReader& in) {
  GreedyStreamingBase::restore_state(in);
  gamma_.restore(in);
}

}  // namespace spnl
