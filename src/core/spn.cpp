#include "core/spn.hpp"

#include <stdexcept>

#include "core/score_kernel.hpp"
#include "util/rng.hpp"

namespace spnl {

namespace {
std::uint32_t resolve_shards(std::uint32_t requested, VertexId n, PartitionId k) {
  return requested == 0 ? GammaWindow::recommended_shards(n, k) : requested;
}
}  // namespace

SpnPartitioner::SpnPartitioner(VertexId num_vertices, EdgeId num_edges,
                               const PartitionConfig& config, SpnOptions options)
    : GreedyStreamingBase(num_vertices, num_edges, config),
      options_(options),
      gamma_(num_vertices, config.num_partitions,
             resolve_shards(options.num_shards, num_vertices, config.num_partitions),
             options.slide) {
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    throw std::invalid_argument("SPN: lambda must be in [0,1]");
  }
}

PartitionId SpnPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId k = num_partitions();
  const double lambda = options_.lambda;

  if (hash_fallback_) {
    // Last-rung degraded mode: a deterministic hash vote run through the
    // normal capacity weighting/tie-breaking, so the balance guarantees
    // survive even though the affinity heuristics are gone. Γ bookkeeping is
    // skipped entirely (the window was shrunk to one row when the rung
    // engaged).
    PartitionId pid;
    {
      PerfScope t(perf_, PerfStage::kScore);
      scores_.assign(k, 0.0);
      scores_[static_cast<PartitionId>(mix64(kDegradedHashSeed ^ v) % k)] = 1.0;
      compute_loads(config_.balance, vertex_counts_, edge_counts_, capacity_,
                    edge_capacity_, scratch_.loads);
      pid = weigh_and_pick(scores_, scratch_.loads, capacity_);
    }
    PerfScope t(perf_, PerfStage::kCommit);
    commit(v, out, pid);
    return pid;
  }

  // Prefetch pass: the route entries and Γ rows this record touches are
  // scattered (tens of MB at recommended shard counts), so they are almost
  // always cache misses. A vertex's ring slot is u % W regardless of the
  // window base, so the row addresses are already final before the slide —
  // issuing the prefetches here overlaps the misses with the row-retirement
  // clear and the scoring arithmetic. Membership is re-evaluated after the
  // slide; a prefetch of a row that then retires (or a miss on one that just
  // entered) only costs a wasted hint.
  const std::uint32_t* gamma_data = gamma_.data();
  const PartitionId* route = route_.data();
  const std::size_t route_size = route_.size();
  for (VertexId u : out) {
    if (u < route_size) prefetch_read(route + u);
    if (gamma_.contains(u)) prefetch_write(gamma_data + gamma_.row_offset(u));
  }

  {
    // Fine-grained slide: the window now starts at the arriving vertex, so
    // its own Γ row is still live for the in-neighbor estimate below.
    PerfScope t(perf_, PerfStage::kWindowAdvance);
    gamma_.advance_to(v);
  }

  PartitionId pid;
  auto& gamma_rows = scratch_.gamma_rows;
  {
    PerfScope t(perf_, PerfStage::kScore);

    // Stash pass over the out-list: each neighbor's post-slide Γ-window
    // membership and row offset, computed once and reused by the
    // kNeighborSum reads and the post-commit increments.
    scores_.assign(k, 0.0);
    gamma_rows.clear();
    for (VertexId u : out) {
      if (gamma_.contains(u)) gamma_rows.push_back(gamma_.row_offset(u));
    }

    // λ term: distribution of already placed out-neighbors. Per-bucket
    // accumulation chains are unchanged from the reference, so the sums are
    // bit-identical.
    for (VertexId u : out) {
      if (u < route_size && route[u] != kUnassigned) {
        scores_[route[u]] += lambda;
      }
    }

    // In-neighbor expectation term.
    if (options_.estimator == InNeighborEstimator::kSelf) {
      if (gamma_.contains(v)) {
        const std::uint32_t* row = gamma_data + gamma_.row_offset(v);
        for (PartitionId i = 0; i < k; ++i) {
          scores_[i] += (1.0 - lambda) * row[i];
        }
      }
    } else {
      for (const std::size_t offset : gamma_rows) {
        const std::uint32_t* row = gamma_data + offset;
        for (PartitionId i = 0; i < k; ++i) {
          scores_[i] += (1.0 - lambda) * row[i];
        }
      }
    }

    compute_loads(config_.balance, vertex_counts_, edge_counts_, capacity_,
                  edge_capacity_, scratch_.loads);
    pid = weigh_and_pick(scores_, scratch_.loads, capacity_);
  }

  {
    PerfScope t(perf_, PerfStage::kCommit);
    commit(v, out, pid);
  }

  {
    // Algorithm 1, lines 5-7: placing v raises P_pid's expectation for every
    // out-neighbor of v. The window cannot have moved since the scoring
    // pass, so the stashed row offsets are still the live slots (counts for
    // retired/out-of-window ids were already dropped there).
    PerfScope t(perf_, PerfStage::kGammaIncrement);
    for (const std::size_t offset : gamma_rows) gamma_.increment_at(offset, pid);
  }
  return pid;
}

std::size_t SpnPartitioner::memory_footprint_bytes() const {
  return GreedyStreamingBase::memory_footprint_bytes() +
         gamma_.memory_footprint_bytes();
}

bool SpnPartitioner::apply_degradation(DegradationStage stage) {
  const auto raise_to = [this](DegradationStage s) {
    if (static_cast<int>(s) > static_cast<int>(stage_)) stage_ = s;
  };
  switch (stage) {
    case DegradationStage::kShrinkWindow: {
      const VertexId w = gamma_.window_size();
      if (w <= 1) return false;
      gamma_.shrink_to(w / 2);
      raise_to(stage);
      return true;
    }
    case DegradationStage::kCoarseSlide:
      if (gamma_.slide_mode() == SlideMode::kCoarse || gamma_.window_size() <= 1) {
        return false;
      }
      gamma_.set_slide_mode(SlideMode::kCoarse);
      raise_to(stage);
      return true;
    case DegradationStage::kHashFallback:
      if (hash_fallback_) return false;
      hash_fallback_ = true;
      gamma_.shrink_to(1);
      raise_to(stage);
      return true;
    case DegradationStage::kNone:
      break;
  }
  return false;
}

void SpnPartitioner::save_state(StateWriter& out) const {
  GreedyStreamingBase::save_state(out);
  gamma_.save(out);
  out.put_u32(static_cast<std::uint32_t>(stage_));
}

void SpnPartitioner::restore_state(StateReader& in) {
  GreedyStreamingBase::restore_state(in);
  gamma_.restore(in);
  stage_ = static_cast<DegradationStage>(in.get_u32());
  hash_fallback_ = stage_ == DegradationStage::kHashFallback;
}

}  // namespace spnl
