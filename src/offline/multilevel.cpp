#include "offline/multilevel.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

/// Undirected weighted CSR used across the multilevel hierarchy.
struct WeightedGraph {
  std::vector<EdgeId> offsets;
  std::vector<VertexId> targets;
  std::vector<std::uint64_t> edge_weights;    // parallel to targets
  std::vector<std::uint64_t> vertex_weights;  // size n

  VertexId num_vertices() const {
    return offsets.empty() ? 0 : static_cast<VertexId>(offsets.size() - 1);
  }
  EdgeId num_edges() const { return targets.size(); }

  std::size_t bytes() const {
    return vector_bytes(offsets) + vector_bytes(targets) +
           vector_bytes(edge_weights) + vector_bytes(vertex_weights);
  }
};

WeightedGraph to_weighted(const Graph& graph) {
  const Graph sym = graph.symmetrized();
  WeightedGraph wg;
  wg.offsets = sym.offsets();
  wg.targets = sym.targets();
  wg.edge_weights.assign(wg.targets.size(), 1);
  wg.vertex_weights.assign(sym.num_vertices(), 1);
  return wg;
}

/// Heavy-edge matching: visit vertices in a random order; match each
/// unmatched vertex with its unmatched neighbor of maximal edge weight.
/// Returns match[v] (match[v] == v for unmatched singletons).
std::vector<VertexId> heavy_edge_matching(const WeightedGraph& graph, Rng& rng) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (VertexId i = n; i > 1; --i) std::swap(order[i - 1], order[rng.next_below(i)]);

  std::vector<VertexId> match(n, kInvalidVertex);
  for (VertexId v : order) {
    if (match[v] != kInvalidVertex) continue;
    VertexId best = v;
    std::uint64_t best_weight = 0;
    for (EdgeId e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      const VertexId u = graph.targets[e];
      if (u == v || match[u] != kInvalidVertex) continue;
      if (graph.edge_weights[e] > best_weight) {
        best_weight = graph.edge_weights[e];
        best = u;
      }
    }
    match[v] = best;
    match[best] = v;  // self-match when best == v
  }
  return match;
}

struct CoarseLevel {
  WeightedGraph graph;
  /// fine vertex -> coarse vertex
  std::vector<VertexId> map;
};

CoarseLevel contract(const WeightedGraph& fine, const std::vector<VertexId>& match) {
  const VertexId n = fine.num_vertices();
  CoarseLevel level;
  level.map.assign(n, kInvalidVertex);
  VertexId coarse_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level.map[v] != kInvalidVertex) continue;
    const VertexId partner = match[v];
    level.map[v] = coarse_n;
    if (partner != v) level.map[partner] = coarse_n;
    ++coarse_n;
  }

  WeightedGraph& coarse = level.graph;
  coarse.vertex_weights.assign(coarse_n, 0);
  for (VertexId v = 0; v < n; ++v) {
    coarse.vertex_weights[level.map[v]] += fine.vertex_weights[v];
  }

  // Aggregate multi-edges per coarse vertex with a small hash map.
  coarse.offsets.assign(static_cast<std::size_t>(coarse_n) + 1, 0);
  {
    std::unordered_map<VertexId, std::uint64_t> agg;
    std::vector<std::vector<std::pair<VertexId, std::uint64_t>>> rows(coarse_n);
    // Group fine vertices by coarse id (each coarse vertex has 1 or 2).
    std::vector<VertexId> first_member(coarse_n, kInvalidVertex);
    std::vector<VertexId> second_member(coarse_n, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId c = level.map[v];
      if (first_member[c] == kInvalidVertex) {
        first_member[c] = v;
      } else {
        second_member[c] = v;
      }
    }
    for (VertexId c = 0; c < coarse_n; ++c) {
      agg.clear();
      for (VertexId member : {first_member[c], second_member[c]}) {
        if (member == kInvalidVertex) continue;
        for (EdgeId e = fine.offsets[member]; e < fine.offsets[member + 1]; ++e) {
          const VertexId tc = level.map[fine.targets[e]];
          if (tc == c) continue;  // contracted edge disappears
          agg[tc] += fine.edge_weights[e];
        }
      }
      rows[c].assign(agg.begin(), agg.end());
      std::sort(rows[c].begin(), rows[c].end());
    }
    EdgeId total = 0;
    for (VertexId c = 0; c < coarse_n; ++c) {
      coarse.offsets[c] = total;
      total += rows[c].size();
    }
    coarse.offsets[coarse_n] = total;
    coarse.targets.reserve(total);
    coarse.edge_weights.reserve(total);
    for (VertexId c = 0; c < coarse_n; ++c) {
      for (const auto& [target, weight] : rows[c]) {
        coarse.targets.push_back(target);
        coarse.edge_weights.push_back(weight);
      }
    }
  }
  return level;
}

/// Greedy graph growing on the coarsest level: grow K BFS regions to the
/// vertex-weight capacity; leftovers go to the lightest partition.
std::vector<PartitionId> initial_partition(const WeightedGraph& graph,
                                           PartitionId k, double capacity,
                                           Rng& rng) {
  const VertexId n = graph.num_vertices();
  std::vector<PartitionId> part(n, kUnassigned);
  std::vector<std::uint64_t> loads(k, 0);
  std::vector<VertexId> queue;
  VertexId assigned = 0;

  for (PartitionId p = 0; p < k && assigned < n; ++p) {
    // Seed: random unassigned vertex (falling back to a scan).
    VertexId seed = kInvalidVertex;
    for (int tries = 0; tries < 16; ++tries) {
      const auto candidate = static_cast<VertexId>(rng.next_below(n));
      if (part[candidate] == kUnassigned) {
        seed = candidate;
        break;
      }
    }
    if (seed == kInvalidVertex) {
      for (VertexId v = 0; v < n; ++v) {
        if (part[v] == kUnassigned) {
          seed = v;
          break;
        }
      }
    }
    if (seed == kInvalidVertex) break;

    queue.clear();
    queue.push_back(seed);
    part[seed] = p;
    loads[p] += graph.vertex_weights[seed];
    ++assigned;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      if (static_cast<double>(loads[p]) >= capacity) break;
      const VertexId v = queue[head];
      for (EdgeId e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
        const VertexId u = graph.targets[e];
        if (part[u] != kUnassigned) continue;
        if (static_cast<double>(loads[p] + graph.vertex_weights[u]) > capacity &&
            loads[p] > 0) {
          continue;
        }
        part[u] = p;
        loads[p] += graph.vertex_weights[u];
        ++assigned;
        queue.push_back(u);
        if (static_cast<double>(loads[p]) >= capacity) break;
      }
    }
  }

  // Any leftovers: lightest partition.
  for (VertexId v = 0; v < n; ++v) {
    if (part[v] != kUnassigned) continue;
    PartitionId lightest = 0;
    for (PartitionId p = 1; p < k; ++p) {
      if (loads[p] < loads[lightest]) lightest = p;
    }
    part[v] = lightest;
    loads[lightest] += graph.vertex_weights[v];
  }
  return part;
}

/// Greedy FM-style boundary refinement: sweep vertices; move a vertex to the
/// adjacent partition with the highest positive cut gain if balance permits.
/// Returns the number of moves.
std::uint64_t refine_pass(const WeightedGraph& graph, std::vector<PartitionId>& part,
                          std::vector<std::uint64_t>& loads, PartitionId k,
                          double capacity) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint64_t> gain(k, 0);
  std::uint64_t moves = 0;
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId current = part[v];
    std::fill(gain.begin(), gain.end(), 0);
    bool boundary = false;
    for (EdgeId e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      const PartitionId p = part[graph.targets[e]];
      gain[p] += graph.edge_weights[e];
      if (p != current) boundary = true;
    }
    if (!boundary) continue;
    PartitionId best = current;
    for (PartitionId p = 0; p < k; ++p) {
      if (p == current || gain[p] <= gain[best]) continue;
      if (static_cast<double>(loads[p] + graph.vertex_weights[v]) > capacity) continue;
      best = p;
    }
    if (best != current) {
      loads[current] -= graph.vertex_weights[v];
      loads[best] += graph.vertex_weights[v];
      part[v] = best;
      ++moves;
    }
  }
  return moves;
}

/// One Fiduccia–Mattheyses pass: vertices move (at most once each) in
/// best-gain-first order through a lazy max-heap; negative-gain moves are
/// allowed (hill climbing) and the pass rolls back to the best cut seen.
/// Returns the cut improvement (0 when the pass achieved nothing).
std::uint64_t fm_pass(const WeightedGraph& graph, std::vector<PartitionId>& part,
                      std::vector<std::uint64_t>& loads, PartitionId k,
                      double capacity) {
  const VertexId n = graph.num_vertices();

  // gain(v -> p) = weight to p - weight to own partition.
  std::vector<std::int64_t> connectivity(k);
  auto best_move = [&](VertexId v) -> std::pair<PartitionId, std::int64_t> {
    std::fill(connectivity.begin(), connectivity.end(), 0);
    for (EdgeId e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      connectivity[part[graph.targets[e]]] +=
          static_cast<std::int64_t>(graph.edge_weights[e]);
    }
    const PartitionId current = part[v];
    PartitionId best = current;
    std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
    for (PartitionId p = 0; p < k; ++p) {
      if (p == current) continue;
      if (static_cast<double>(loads[p] + graph.vertex_weights[v]) > capacity) continue;
      const std::int64_t gain = connectivity[p] - connectivity[current];
      if (gain > best_gain || (gain == best_gain && loads[p] < loads[best])) {
        best = p;
        best_gain = gain;
      }
    }
    return {best, best == current ? std::numeric_limits<std::int64_t>::min()
                                  : best_gain};
  };

  struct HeapEntry {
    std::int64_t gain;
    VertexId vertex;
    PartitionId target;
    bool operator<(const HeapEntry& other) const { return gain < other.gain; }
  };
  std::priority_queue<HeapEntry> heap;
  std::vector<bool> locked(n, false);
  for (VertexId v = 0; v < n; ++v) {
    const auto [target, gain] = best_move(v);
    if (gain != std::numeric_limits<std::int64_t>::min()) {
      heap.push({gain, v, target});
    }
  }

  struct Move {
    VertexId vertex;
    PartitionId from;
    PartitionId to;
  };
  std::vector<Move> moves;
  std::int64_t cumulative = 0, best_cumulative = 0;
  std::size_t best_prefix = 0;
  // Bail out of long negative plateaus: classic FM early termination.
  int since_best = 0;
  const int patience = std::max<int>(64, static_cast<int>(n / 16));

  while (!heap.empty() && since_best < patience) {
    const HeapEntry entry = heap.top();
    heap.pop();
    if (locked[entry.vertex]) continue;
    const auto [target, gain] = best_move(entry.vertex);
    if (gain == std::numeric_limits<std::int64_t>::min()) continue;
    if (gain != entry.gain || target != entry.target) {
      heap.push({gain, entry.vertex, target});  // stale: re-queue fresh
      continue;
    }
    // Execute the move tentatively.
    const PartitionId from = part[entry.vertex];
    locked[entry.vertex] = true;
    part[entry.vertex] = target;
    loads[from] -= graph.vertex_weights[entry.vertex];
    loads[target] += graph.vertex_weights[entry.vertex];
    moves.push_back({entry.vertex, from, target});
    cumulative += gain;
    if (cumulative > best_cumulative) {
      best_cumulative = cumulative;
      best_prefix = moves.size();
      since_best = 0;
    } else {
      ++since_best;
    }
    // Refresh unlocked neighbors (lazy: push their current best move).
    for (EdgeId e = graph.offsets[entry.vertex]; e < graph.offsets[entry.vertex + 1];
         ++e) {
      const VertexId u = graph.targets[e];
      if (locked[u]) continue;
      const auto [utarget, ugain] = best_move(u);
      if (ugain != std::numeric_limits<std::int64_t>::min()) {
        heap.push({ugain, u, utarget});
      }
    }
  }

  // Roll back to the best prefix.
  for (std::size_t i = moves.size(); i > best_prefix; --i) {
    const Move& move = moves[i - 1];
    part[move.vertex] = move.from;
    loads[move.to] -= graph.vertex_weights[move.vertex];
    loads[move.from] += graph.vertex_weights[move.vertex];
  }
  return static_cast<std::uint64_t>(best_cumulative);
}

}  // namespace

OfflineResult multilevel_partition(const Graph& graph, const PartitionConfig& config,
                                   const MultilevelOptions& options) {
  const PartitionId k = config.num_partitions;
  if (k == 0) throw std::invalid_argument("multilevel_partition: K must be >= 1");
  OfflineResult result;
  result.partitioner_name = "Multilevel";
  Timer timer;

  const VertexId n = graph.num_vertices();
  if (n == 0) {
    result.partition_seconds = timer.seconds();
    return result;
  }

  Rng rng(options.seed);
  const VertexId coarsest_target =
      options.coarsest_size > 0
          ? options.coarsest_size
          : std::max<VertexId>(static_cast<VertexId>(32) * k, 256);
  // Total vertex weight is n (unit weights at the finest level); capacity in
  // weight units is the same at every level.
  const double capacity =
      std::max(1.0, config.slack * static_cast<double>(n) / k);

  std::vector<WeightedGraph> levels;
  std::vector<std::vector<VertexId>> maps;  // maps[i]: level i -> level i+1
  levels.push_back(to_weighted(graph));
  std::size_t peak = graph.memory_footprint_bytes() + levels.back().bytes();

  while (levels.back().num_vertices() > coarsest_target &&
         static_cast<int>(levels.size()) < options.max_levels) {
    auto match = heavy_edge_matching(levels.back(), rng);
    CoarseLevel next = contract(levels.back(), match);
    // Stop if coarsening stalls (< 5% shrink): star-like graphs match poorly.
    if (next.graph.num_vertices() >
        static_cast<VertexId>(0.95 * levels.back().num_vertices())) {
      break;
    }
    peak += next.graph.bytes() + vector_bytes(next.map);
    maps.push_back(std::move(next.map));
    levels.push_back(std::move(next.graph));
  }
  result.levels = static_cast<int>(levels.size());

  // Initial partition at the coarsest level.
  std::vector<PartitionId> part =
      initial_partition(levels.back(), k, capacity, rng);

  // Uncoarsen with refinement at every level.
  for (int level = static_cast<int>(levels.size()) - 1; level >= 0; --level) {
    const WeightedGraph& wg = levels[level];
    std::vector<std::uint64_t> loads(k, 0);
    for (VertexId v = 0; v < wg.num_vertices(); ++v) {
      loads[part[v]] += wg.vertex_weights[v];
    }
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      const std::uint64_t improved =
          options.refiner == Refiner::kFm
              ? fm_pass(wg, part, loads, k, capacity)
              : refine_pass(wg, part, loads, k, capacity);
      if (improved == 0) break;
    }
    if (level > 0) {
      // Project to the next finer level.
      const std::vector<VertexId>& map = maps[level - 1];
      std::vector<PartitionId> finer(levels[level - 1].num_vertices());
      for (VertexId v = 0; v < finer.size(); ++v) finer[v] = part[map[v]];
      part = std::move(finer);
    }
  }

  result.route = std::move(part);
  result.partition_seconds = timer.seconds();
  result.peak_bytes = peak;
  return result;
}

}  // namespace spnl
