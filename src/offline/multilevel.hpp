// Multilevel offline partitioner — the METIS-substitute baseline (Table V).
//
// Classic three-phase scheme (Karypis & Kumar):
//  1. Coarsening: repeated heavy-edge matching contracts the (symmetrized,
//     weighted) graph until it is small, accumulating vertex and edge
//     weights so each level is an exact weighted quotient of the original.
//  2. Initial partitioning: greedy graph growing on the coarsest level —
//     BFS regions grown to the weight capacity, K times.
//  3. Uncoarsening: the partition is projected back level by level and
//     polished with greedy boundary refinement (an FM-style gain pass with
//     a hard balance constraint).
//
// Like METIS, it loads the whole graph and materializes per-level quotients:
// memory is Ω(|E|) — the scalability wall Table IV/V attributes to offline
// methods (the real METIS dies with OOM on sk2005/uk2007).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

/// Uncoarsening refiner.
enum class Refiner {
  kGreedy,  ///< positive-gain greedy sweeps (fast)
  kFm,      ///< Fiduccia–Mattheyses passes with hill climbing + rollback
            ///< (closer to METIS quality, slower)
};

struct MultilevelOptions {
  /// Stop coarsening at about this many vertices (0 = max(32·K, 256)).
  VertexId coarsest_size = 0;
  /// Boundary refinement sweeps/passes per level.
  int refinement_passes = 6;
  Refiner refiner = Refiner::kGreedy;
  /// Matching visit order seed.
  std::uint64_t seed = 1;
  /// Abort knob: maximum levels (safety against pathological graphs).
  int max_levels = 64;
};

struct OfflineResult {
  std::string partitioner_name;
  std::vector<PartitionId> route;
  double partition_seconds = 0.0;
  /// Peak bytes across all materialized levels/structures — the MC metric.
  std::size_t peak_bytes = 0;
  int levels = 0;
};

/// Vertex-partitions the graph into config.num_partitions parts. Balance is
/// enforced on vertex counts (the paper's primary constraint) with the
/// config slack.
OfflineResult multilevel_partition(const Graph& graph, const PartitionConfig& config,
                                   const MultilevelOptions& options = {});

}  // namespace spnl
