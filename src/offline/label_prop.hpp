// Constrained label-propagation partitioner — the XtraPuLP-substitute
// baseline (Table V).
//
// XtraPuLP (Slota et al.) partitions by iterative, balance-constrained label
// propagation over the whole graph. This implementation follows that recipe
// in shared memory:
//  * the graph is fully loaded and symmetrized (Ω(|E|) memory — the
//    offline scalability wall of Table IV),
//  * labels are initialized randomly (balanced),
//  * several propagation sweeps move each vertex to the label that maximizes
//    neighbor agreement weighted by remaining capacity, under a hard
//    per-partition size cap,
//  * parallel mode splits the vertex range across threads with racy label
//    reads (async label propagation) — faster per sweep but noisier, which
//    reproduces the paper's observation that parallel XtraPuLP loses up to
//    47% ECR quality.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "offline/multilevel.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

struct LabelPropOptions {
  int iterations = 8;
  /// 1 = centralized; >1 = shared-memory parallel sweeps.
  unsigned num_threads = 1;
  std::uint64_t seed = 1;
  /// Stop early when a sweep moves fewer than this fraction of vertices.
  double convergence_fraction = 0.001;
};

OfflineResult label_prop_partition(const Graph& graph, const PartitionConfig& config,
                                   const LabelPropOptions& options = {});

}  // namespace spnl
