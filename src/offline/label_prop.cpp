#include "offline/label_prop.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

/// One label-propagation sweep over [begin, end). Labels and loads are read
/// and written through atomics; in parallel mode the reads are racy by
/// design (async LP). Returns the number of moves.
std::uint64_t sweep_range(const Graph& sym, std::vector<std::atomic<PartitionId>>& label,
                          std::vector<std::atomic<std::int64_t>>& loads,
                          PartitionId k, double capacity, VertexId begin,
                          VertexId end) {
  std::vector<double> agreement(k);
  std::uint64_t moves = 0;
  for (VertexId v = begin; v < end; ++v) {
    const PartitionId current = label[v].load(std::memory_order_relaxed);
    std::fill(agreement.begin(), agreement.end(), 0.0);
    bool boundary = false;
    for (VertexId u : sym.out_neighbors(v)) {
      const PartitionId lu = label[u].load(std::memory_order_relaxed);
      agreement[lu] += 1.0;
      if (lu != current) boundary = true;
    }
    if (!boundary) continue;

    PartitionId best = current;
    double best_score =
        agreement[current] *
        (1.0 - static_cast<double>(loads[current].load(std::memory_order_relaxed)) /
                   capacity);
    for (PartitionId p = 0; p < k; ++p) {
      if (p == current) continue;
      const auto load = loads[p].load(std::memory_order_relaxed);
      if (static_cast<double>(load) + 1.0 > capacity) continue;
      const double score =
          agreement[p] * (1.0 - static_cast<double>(load) / capacity);
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best != current) {
      label[v].store(best, std::memory_order_relaxed);
      loads[current].fetch_sub(1, std::memory_order_relaxed);
      loads[best].fetch_add(1, std::memory_order_relaxed);
      ++moves;
    }
  }
  return moves;
}

}  // namespace

OfflineResult label_prop_partition(const Graph& graph, const PartitionConfig& config,
                                   const LabelPropOptions& options) {
  const PartitionId k = config.num_partitions;
  if (k == 0) throw std::invalid_argument("label_prop_partition: K must be >= 1");
  if (options.num_threads == 0) {
    throw std::invalid_argument("label_prop_partition: need >= 1 thread");
  }

  OfflineResult result;
  result.partitioner_name =
      options.num_threads > 1 ? "LabelProp(par)" : "LabelProp";
  Timer timer;

  const VertexId n = graph.num_vertices();
  if (n == 0) {
    result.partition_seconds = timer.seconds();
    return result;
  }

  const Graph sym = graph.symmetrized();
  const double capacity = std::max(1.0, config.slack * static_cast<double>(n) / k);

  // Balanced random initialization: a shuffled block assignment.
  Rng rng(options.seed);
  std::vector<PartitionId> init(n);
  for (VertexId v = 0; v < n; ++v) init[v] = static_cast<PartitionId>(v % k);
  for (VertexId i = n; i > 1; --i) std::swap(init[i - 1], init[rng.next_below(i)]);

  std::vector<std::atomic<PartitionId>> label(n);
  std::vector<std::atomic<std::int64_t>> loads(k);
  for (PartitionId p = 0; p < k; ++p) loads[p].store(0, std::memory_order_relaxed);
  for (VertexId v = 0; v < n; ++v) {
    label[v].store(init[v], std::memory_order_relaxed);
    loads[init[v]].fetch_add(1, std::memory_order_relaxed);
  }

  const auto min_moves =
      static_cast<std::uint64_t>(options.convergence_fraction * n);
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::uint64_t moves = 0;
    if (options.num_threads == 1) {
      moves = sweep_range(sym, label, loads, k, capacity, 0, n);
    } else {
      std::atomic<std::uint64_t> total{0};
      std::vector<std::thread> threads;
      const VertexId chunk = (n + options.num_threads - 1) / options.num_threads;
      for (unsigned t = 0; t < options.num_threads; ++t) {
        const VertexId begin = std::min<VertexId>(n, t * chunk);
        const VertexId end = std::min<VertexId>(n, begin + chunk);
        if (begin >= end) break;
        threads.emplace_back([&, begin, end] {
          total.fetch_add(sweep_range(sym, label, loads, k, capacity, begin, end),
                          std::memory_order_relaxed);
        });
      }
      for (auto& thread : threads) thread.join();
      moves = total.load();
    }
    if (moves <= min_moves) break;
  }

  result.route.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.route[v] = label[v].load(std::memory_order_relaxed);
  }
  result.partition_seconds = timer.seconds();
  result.peak_bytes = graph.memory_footprint_bytes() + sym.memory_footprint_bytes() +
                      n * (sizeof(PartitionId)) + k * sizeof(std::int64_t);
  return result;
}

}  // namespace spnl
