// Partitioned graph storage: what a distributed loader builds from a route
// table. Each partition holds its local vertices' adjacency in CSR form
// with LOCAL ids, a ghost table for remote endpoints, and the out-edge
// routing split into local vs per-remote-partition lists — the layout a
// Pregel-style worker actually computes over.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// One partition's shard of the graph.
struct GraphShard {
  /// Global ids of the local vertices, in local-id order.
  std::vector<VertexId> global_ids;
  /// CSR over local vertices; targets are GLOBAL ids (the executor resolves
  /// ownership via the route table — cheap and avoids a ghost indirection
  /// in the hot loop).
  std::vector<EdgeId> offsets;
  std::vector<VertexId> targets;
  /// Global ids of remote vertices referenced by local out-edges (ghosts),
  /// deduplicated and sorted.
  std::vector<VertexId> ghosts;
  EdgeId internal_edges = 0;
  EdgeId external_edges = 0;

  VertexId num_local() const {
    return static_cast<VertexId>(global_ids.size());
  }
  std::size_t memory_footprint_bytes() const;
};

/// The full partitioned graph: K shards + ownership metadata.
class PartitionedGraph {
 public:
  /// Splits `graph` by `route` (complete assignment into k partitions).
  PartitionedGraph(const Graph& graph, const std::vector<PartitionId>& route,
                   PartitionId k);

  PartitionId num_partitions() const { return static_cast<PartitionId>(shards_.size()); }
  const GraphShard& shard(PartitionId p) const { return shards_[p]; }
  PartitionId owner(VertexId global_id) const { return route_[global_id]; }
  /// Local id of a global vertex within its owner's shard.
  VertexId local_id(VertexId global_id) const { return local_ids_[global_id]; }
  VertexId num_vertices() const { return static_cast<VertexId>(route_.size()); }

  /// Total ghost entries across shards — the replication the cut induces.
  std::uint64_t total_ghosts() const;

  std::size_t memory_footprint_bytes() const;

 private:
  std::vector<GraphShard> shards_;
  std::vector<PartitionId> route_;
  std::vector<VertexId> local_ids_;
};

}  // namespace spnl
