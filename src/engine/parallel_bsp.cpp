#include "engine/parallel_bsp.hpp"

#include <atomic>
#include <barrier>
#include <optional>
#include <thread>
#include <vector>

namespace spnl {

BspResult run_bsp_parallel(const Graph& graph, const PartitionedGraph& partitioned,
                           VertexProgram& program, ParallelBspOptions options) {
  const PartitionId k = partitioned.num_partitions();
  const VertexId n = partitioned.num_vertices();

  BspResult result;
  result.values.resize(n);
  // NOT vector<bool>: workers write adjacent vertices' flags concurrently
  // and the bit-packed specialization would race within a byte.
  std::vector<char> active(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    active[v] = program.init(v, graph, result.values[v]) ? 1 : 0;
  }

  // outboxes[from][to]: messages crossing partitions this superstep.
  using Message = std::pair<VertexId, double>;
  std::vector<std::vector<std::vector<Message>>> outboxes(
      k, std::vector<std::vector<Message>>(k));
  // Per-partition inbox over global ids (only the owner writes its slots).
  std::vector<std::optional<double>> inbox(n);

  std::atomic<bool> any_active{true};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> local_total{0}, remote_total{0};
  std::atomic<int> supersteps{0};

  // Barrier completion: runs on exactly one thread between phases.
  auto on_phase_end = [&]() noexcept {};
  std::barrier sync(static_cast<std::ptrdiff_t>(k), on_phase_end);

  auto worker = [&](PartitionId p) {
    const GraphShard& shard = partitioned.shard(p);
    for (int step = 0; step < options.max_supersteps; ++step) {
      // --- Phase 1: compute + send -------------------------------------
      std::uint64_t local = 0, remote = 0;
      bool emitted_any = false;
      for (VertexId lv = 0; lv < shard.num_local(); ++lv) {
        const VertexId v = shard.global_ids[lv];
        if (!active[v]) continue;
        emitted_any = true;
        const auto message = program.emit(v, result.values[v], graph);
        if (!message) continue;
        for (EdgeId e = shard.offsets[lv]; e < shard.offsets[lv + 1]; ++e) {
          const VertexId u = shard.targets[e];
          const double delivered = program.emit_to(v, *message, u, graph);
          const PartitionId owner = partitioned.owner(u);
          if (owner == p) {
            if (inbox[u]) {
              inbox[u] = program.combine(*inbox[u], delivered);
            } else {
              inbox[u] = delivered;
            }
            ++local;
          } else {
            outboxes[p][owner].emplace_back(u, delivered);
            ++remote;
          }
        }
      }
      if (emitted_any) any_active.store(true, std::memory_order_relaxed);
      local_total.fetch_add(local, std::memory_order_relaxed);
      remote_total.fetch_add(remote, std::memory_order_relaxed);
      sync.arrive_and_wait();

      // Single thread decides termination for the round just computed.
      if (p == 0) {
        if (!any_active.load()) {
          done.store(true);
        } else {
          supersteps.fetch_add(1);
          any_active.store(false);
        }
      }
      sync.arrive_and_wait();
      if (done.load()) return;

      // --- Phase 2: receive + apply ------------------------------------
      for (PartitionId from = 0; from < k; ++from) {
        for (const auto& [u, value] : outboxes[from][p]) {
          if (inbox[u]) {
            inbox[u] = program.combine(*inbox[u], value);
          } else {
            inbox[u] = value;
          }
        }
      }
      for (VertexId lv = 0; lv < shard.num_local(); ++lv) {
        const VertexId v = shard.global_ids[lv];
        const bool stay = program.apply(v, result.values[v], inbox[v], step, graph);
        active[v] = stay ? 1 : 0;
        if (stay) any_active.store(true, std::memory_order_relaxed);
        inbox[v] = std::nullopt;
      }
      // Clear this worker's incoming boxes for the next round.
      sync.arrive_and_wait();
      for (PartitionId from = 0; from < k; ++from) outboxes[from][p].clear();
      sync.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(k);
  for (PartitionId p = 0; p < k; ++p) threads.emplace_back(worker, p);
  for (auto& thread : threads) thread.join();

  result.stats.supersteps = supersteps.load();
  result.stats.local_messages = local_total.load();
  result.stats.remote_messages = remote_total.load();
  return result;
}

}  // namespace spnl
