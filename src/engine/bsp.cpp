#include "engine/bsp.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

BspResult run_bsp(const Graph& graph, const std::vector<PartitionId>& route,
                  PartitionId k, VertexProgram& program, BspOptions options) {
  const VertexId n = graph.num_vertices();
  if (route.size() != n) throw std::invalid_argument("run_bsp: route size != |V|");
  for (PartitionId p : route) {
    if (p >= k) throw std::invalid_argument("run_bsp: partition id out of range");
  }

  BspResult result;
  result.values.resize(n);
  std::vector<bool> active(n, false);
  for (VertexId v = 0; v < n; ++v) {
    active[v] = program.init(v, graph, result.values[v]);
  }

  std::vector<std::optional<double>> inbox(n);
  std::vector<double> worker_cost(k);
  std::vector<std::uint64_t> traffic;
  if (options.record_traffic) traffic.resize(static_cast<std::size_t>(k) * k);

  for (int step = 0; step < options.max_supersteps; ++step) {
    bool any_active = false;
    std::fill(inbox.begin(), inbox.end(), std::nullopt);
    std::fill(worker_cost.begin(), worker_cost.end(), 0.0);
    std::fill(traffic.begin(), traffic.end(), 0u);
    std::uint64_t local = 0, remote = 0;

    for (VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      any_active = true;
      const auto message = program.emit(v, result.values[v], graph);
      if (!message) continue;
      for (VertexId u : graph.out_neighbors(v)) {
        const double delivered = program.emit_to(v, *message, u, graph);
        if (inbox[u]) {
          inbox[u] = program.combine(*inbox[u], delivered);
        } else {
          inbox[u] = delivered;
        }
        if (route[u] == route[v]) {
          ++local;
          worker_cost[route[v]] += 1.0;
        } else {
          ++remote;
          worker_cost[route[v]] += options.remote_cost_factor;
        }
        if (options.record_traffic) {
          ++traffic[static_cast<std::size_t>(route[v]) * k + route[u]];
        }
      }
    }
    if (!any_active) break;

    ++result.stats.supersteps;
    result.stats.local_messages += local;
    result.stats.remote_messages += remote;
    result.stats.critical_path_cost +=
        *std::max_element(worker_cost.begin(), worker_cost.end());
    if (options.record_traffic) {
      result.traffic.push_back(traffic);
      std::vector<std::uint64_t> emitted(k, 0);
      for (PartitionId from = 0; from < k; ++from) {
        for (PartitionId to = 0; to < k; ++to) {
          emitted[from] += traffic[static_cast<std::size_t>(from) * k + to];
        }
      }
      result.compute.push_back(std::move(emitted));
    }

    for (VertexId v = 0; v < n; ++v) {
      active[v] = program.apply(v, result.values[v], inbox[v], step, graph);
    }
  }
  return result;
}

}  // namespace spnl
