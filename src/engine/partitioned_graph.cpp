#include "engine/partitioned_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/memory.hpp"

namespace spnl {

std::size_t GraphShard::memory_footprint_bytes() const {
  return vector_bytes(global_ids) + vector_bytes(offsets) + vector_bytes(targets) +
         vector_bytes(ghosts);
}

PartitionedGraph::PartitionedGraph(const Graph& graph,
                                   const std::vector<PartitionId>& route,
                                   PartitionId k)
    : route_(route), local_ids_(graph.num_vertices(), kInvalidVertex) {
  if (route.size() != graph.num_vertices()) {
    throw std::invalid_argument("PartitionedGraph: route size != |V|");
  }
  if (k == 0) throw std::invalid_argument("PartitionedGraph: k must be >= 1");
  shards_.resize(k);

  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (route[v] >= k) {
      throw std::invalid_argument("PartitionedGraph: partition id out of range");
    }
    GraphShard& shard = shards_[route[v]];
    local_ids_[v] = shard.num_local();
    shard.global_ids.push_back(v);
  }

  for (PartitionId p = 0; p < k; ++p) {
    GraphShard& shard = shards_[p];
    shard.offsets.reserve(shard.global_ids.size() + 1);
    shard.offsets.push_back(0);
    for (VertexId v : shard.global_ids) {
      for (VertexId u : graph.out_neighbors(v)) {
        shard.targets.push_back(u);
        if (route[u] == p) {
          ++shard.internal_edges;
        } else {
          ++shard.external_edges;
          shard.ghosts.push_back(u);
        }
      }
      shard.offsets.push_back(shard.targets.size());
    }
    std::sort(shard.ghosts.begin(), shard.ghosts.end());
    shard.ghosts.erase(std::unique(shard.ghosts.begin(), shard.ghosts.end()),
                       shard.ghosts.end());
  }
}

std::uint64_t PartitionedGraph::total_ghosts() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.ghosts.size();
  return total;
}

std::size_t PartitionedGraph::memory_footprint_bytes() const {
  std::size_t bytes = vector_bytes(route_) + vector_bytes(local_ids_);
  for (const auto& shard : shards_) bytes += shard.memory_footprint_bytes();
  return bytes;
}

}  // namespace spnl
