// Threaded BSP executor: the shared-memory realization of the distributed
// runtime the paper's partitions target. One thread per partition computes
// over its GraphShard, cross-partition messages travel through per-pair
// outboxes, and std::barrier separates the compute / exchange / apply
// phases of every superstep — a faithful miniature of Pregel's execution
// model, against which the sequential engine's results are verified.
//
// The VertexProgram must be stateless across vertices (emit/combine/apply
// are called concurrently from worker threads); all programs in
// algorithms.hpp qualify.
#pragma once

#include "engine/bsp.hpp"
#include "engine/partitioned_graph.hpp"

namespace spnl {

struct ParallelBspOptions {
  int max_supersteps = 50;
};

/// Runs the program over the partitioned graph with one thread per
/// partition. `graph` must be the graph the PartitionedGraph was built
/// from (programs consult it for degrees). Values/stats match run_bsp
/// bit-for-bit for programs with associative, order-insensitive combiners
/// (min) and within floating-point reassociation for sums.
BspResult run_bsp_parallel(const Graph& graph, const PartitionedGraph& partitioned,
                           VertexProgram& program, ParallelBspOptions options = {});

}  // namespace spnl
