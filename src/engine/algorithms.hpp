// The standard vertex-centric algorithms on top of the BSP engine — the
// workloads the paper's introduction motivates (PageRank, Shortest Path) plus
// the usual connectivity suspects. Each returns the computed values and the
// engine's communication statistics under the given partitioning.
#pragma once

#include "engine/bsp.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// PageRank with damping 0.85 for a fixed number of supersteps.
BspResult pagerank(const Graph& graph, const std::vector<PartitionId>& route,
                   PartitionId k, int supersteps = 20,
                   double remote_cost_factor = 20.0);

/// PageRank with per-superstep traffic matrices recorded (for the cluster
/// simulator, cluster/simulator.hpp).
BspResult pagerank_with_traffic(const Graph& graph,
                                const std::vector<PartitionId>& route,
                                PartitionId k, int supersteps = 20);

/// BFS depth from `source` (unreached = +inf). Also serves as unit-weight
/// SSSP.
BspResult bfs_depths(const Graph& graph, const std::vector<PartitionId>& route,
                     PartitionId k, VertexId source,
                     double remote_cost_factor = 20.0);

/// Weakly connected components via min-label propagation over the
/// symmetrized graph; values are component labels (smallest member id).
BspResult connected_components(const Graph& graph,
                               const std::vector<PartitionId>& route,
                               PartitionId k, double remote_cost_factor = 20.0);

/// Deterministic synthetic edge weight in [1, 10) for the weighted SSSP
/// (real datasets carry no weights; a fixed hash keeps runs reproducible).
double synthetic_edge_weight(VertexId from, VertexId to);

/// Single-source shortest paths with synthetic_edge_weight on every edge
/// (Bellman-Ford-style relaxation over BSP; unreached = +inf).
BspResult sssp(const Graph& graph, const std::vector<PartitionId>& route,
               PartitionId k, VertexId source, double remote_cost_factor = 20.0);

}  // namespace spnl
