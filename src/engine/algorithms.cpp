#include "engine/algorithms.hpp"

#include <limits>

#include "util/rng.hpp"

namespace spnl {

namespace {

class PageRankProgram final : public VertexProgram {
 public:
  explicit PageRankProgram(int supersteps) : supersteps_(supersteps) {}

  bool init(VertexId, const Graph& graph, double& value) override {
    value = 1.0 / std::max<VertexId>(graph.num_vertices(), 1);
    return true;
  }

  std::optional<double> emit(VertexId v, double value, const Graph& graph) override {
    const EdgeId degree = graph.out_degree(v);
    if (degree == 0) return std::nullopt;
    return kDamping * value / degree;
  }

  double combine(double a, double b) override { return a + b; }

  bool apply(VertexId, double& value, std::optional<double> inbox, int superstep,
             const Graph& graph) override {
    value = (1.0 - kDamping) / graph.num_vertices() + inbox.value_or(0.0);
    return superstep + 1 < supersteps_;
  }

 private:
  static constexpr double kDamping = 0.85;
  int supersteps_;
};

class MinLabelProgram final : public VertexProgram {
 public:
  /// source = kInvalidVertex: every vertex starts with its own id (WCC);
  /// otherwise only `source` starts active at 0 (BFS depths).
  explicit MinLabelProgram(VertexId source) : source_(source) {}

  bool init(VertexId v, const Graph&, double& value) override {
    if (source_ == kInvalidVertex) {
      value = v;
      return true;
    }
    value = v == source_ ? 0.0 : std::numeric_limits<double>::infinity();
    return v == source_;
  }

  std::optional<double> emit(VertexId, double value, const Graph&) override {
    // BFS sends depth+1; WCC sends its label.
    return source_ == kInvalidVertex ? value : value + 1.0;
  }

  double combine(double a, double b) override { return std::min(a, b); }

  bool apply(VertexId, double& value, std::optional<double> inbox, int,
             const Graph&) override {
    if (inbox && *inbox < value) {
      value = *inbox;
      return true;
    }
    return false;
  }

 private:
  VertexId source_;
};

/// Weighted distance relaxation: emits its distance, edges add their weight.
class SsspProgram final : public VertexProgram {
 public:
  explicit SsspProgram(VertexId source) : source_(source) {}

  bool init(VertexId v, const Graph&, double& value) override {
    value = v == source_ ? 0.0 : std::numeric_limits<double>::infinity();
    return v == source_;
  }

  std::optional<double> emit(VertexId, double value, const Graph&) override {
    return value;
  }

  double emit_to(VertexId v, double base, VertexId u, const Graph&) override {
    return base + synthetic_edge_weight(v, u);
  }

  double combine(double a, double b) override { return std::min(a, b); }

  bool apply(VertexId, double& value, std::optional<double> inbox, int,
             const Graph&) override {
    if (inbox && *inbox < value) {
      value = *inbox;
      return true;
    }
    return false;
  }

 private:
  VertexId source_;
};

}  // namespace

double synthetic_edge_weight(VertexId from, VertexId to) {
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(from) << 32) | to);
  return 1.0 + static_cast<double>(h % 9000) / 1000.0;  // [1, 10)
}

BspResult sssp(const Graph& graph, const std::vector<PartitionId>& route,
               PartitionId k, VertexId source, double remote_cost_factor) {
  SsspProgram program(source);
  return run_bsp(graph, route, k, program,
                 {.max_supersteps = static_cast<int>(graph.num_vertices()) + 1,
                  .remote_cost_factor = remote_cost_factor});
}

BspResult pagerank(const Graph& graph, const std::vector<PartitionId>& route,
                   PartitionId k, int supersteps, double remote_cost_factor) {
  PageRankProgram program(supersteps);
  return run_bsp(graph, route, k, program,
                 {.max_supersteps = supersteps, .remote_cost_factor = remote_cost_factor});
}

BspResult pagerank_with_traffic(const Graph& graph,
                                const std::vector<PartitionId>& route,
                                PartitionId k, int supersteps) {
  PageRankProgram program(supersteps);
  return run_bsp(graph, route, k, program,
                 {.max_supersteps = supersteps, .record_traffic = true});
}

BspResult bfs_depths(const Graph& graph, const std::vector<PartitionId>& route,
                     PartitionId k, VertexId source, double remote_cost_factor) {
  MinLabelProgram program(source);
  return run_bsp(graph, route, k, program,
                 {.max_supersteps = static_cast<int>(graph.num_vertices()) + 1,
                  .remote_cost_factor = remote_cost_factor});
}

BspResult connected_components(const Graph& graph,
                               const std::vector<PartitionId>& route, PartitionId k,
                               double remote_cost_factor) {
  // Min-label propagation needs information to flow both ways.
  const Graph sym = graph.symmetrized();
  MinLabelProgram program(kInvalidVertex);
  return run_bsp(sym, route, k, program,
                 {.max_supersteps = static_cast<int>(sym.num_vertices()) + 1,
                  .remote_cost_factor = remote_cost_factor});
}

}  // namespace spnl
