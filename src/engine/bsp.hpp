// A small vertex-centric BSP engine — the Pregel-style consumer the paper's
// partitions are made for (Sec. I-II: partitioners are built-in components
// of vertex-centric systems; cut edges become network messages).
//
// The engine simulates a K-worker cluster defined by a route table: each
// superstep, every active vertex emits one message value along each outgoing
// edge; messages are combined per target; targets apply the combined value
// and decide whether to stay active. The engine counts local vs remote
// (cross-partition) messages, which is exactly the communication-cost model
// the ECR metric stands for.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// User algorithm plugged into the engine (PageRank, BFS, WCC, ...).
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Initial value; return true to start the vertex active.
  virtual bool init(VertexId v, const Graph& graph, double& value) = 0;

  /// Message an active vertex sends along EVERY out-edge this superstep
  /// (nullopt = sends nothing).
  virtual std::optional<double> emit(VertexId v, double value,
                                     const Graph& graph) = 0;

  /// Per-edge refinement of emit(): the value actually delivered along the
  /// specific edge (v, u). The default ignores the edge — algorithms with
  /// edge weights (weighted SSSP) override it. `base` is emit()'s result.
  virtual double emit_to(VertexId v, double base, VertexId u, const Graph& graph) {
    (void)v;
    (void)u;
    (void)graph;
    return base;
  }

  /// Commutative/associative message combiner (e.g. sum, min).
  virtual double combine(double a, double b) = 0;

  /// Applies the combined inbox (nullopt = no messages received). Returns
  /// true to be active in the next superstep.
  virtual bool apply(VertexId v, double& value, std::optional<double> inbox,
                     int superstep, const Graph& graph) = 0;
};

struct BspStats {
  int supersteps = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t remote_messages = 0;
  /// Σ over supersteps of the slowest worker's cost under the model
  /// local=1, remote=remote_cost_factor (BSP barrier per superstep).
  double critical_path_cost = 0.0;

  double remote_fraction() const {
    const std::uint64_t total = local_messages + remote_messages;
    return total == 0 ? 0.0 : static_cast<double>(remote_messages) / total;
  }
};

struct BspOptions {
  int max_supersteps = 50;
  /// Relative cost of a cross-partition message (serialization + network).
  double remote_cost_factor = 20.0;
  /// Record per-superstep worker->worker traffic matrices and per-worker
  /// compute counts (consumed by the cluster simulator). Costs
  /// O(supersteps * K^2) memory.
  bool record_traffic = false;
};

struct BspResult {
  std::vector<double> values;
  BspStats stats;
  /// Per superstep: K*K message counts, row-major [from*K + to] (only when
  /// record_traffic is set). Diagonal entries are worker-local messages.
  std::vector<std::vector<std::uint64_t>> traffic;
  /// Per superstep: messages EMITTED by each worker (its compute share).
  std::vector<std::vector<std::uint64_t>> compute;
};

/// Runs the program over the partitioned graph. route.size() must equal
/// |V| and every id must be < k.
BspResult run_bsp(const Graph& graph, const std::vector<PartitionId>& route,
                  PartitionId k, VertexProgram& program, BspOptions options = {});

}  // namespace spnl
