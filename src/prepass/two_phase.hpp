// 2PS-style two-phase streaming: a lightweight clustering prepass whose
// cluster ids become placement hints for a second, full-quality pass.
//
// Phase 1 ("2PS: High-Quality Edge Partitioning with Two-Phase Streaming",
// PAPERS.md, adapted from edge to vertex streams): one scan assigns every
// vertex to a size-capped streaming cluster — join the cluster most of your
// already-clustered out-neighbors are in, else found a new one, and pull
// still-unclustered out-neighbors into your cluster so later arrivals start
// with a vote. Optional restream passes move vertices to their majority
// cluster (label-propagation refinement under the same cap).
//
// Phase 2: clusters are packed onto the K partitions (largest first onto the
// least-loaded) and the per-vertex partition hints replace SPNL's contiguous
// range table (SpnlOptions::logical_hints): the logical-knowledge term of
// Eq. 6 then encodes discovered community structure instead of assuming the
// numbering embeds it — which is what rescues SPNL on hostile stream orders
// (docs/scenarios.md).
//
// The prepass trades one extra scan and O(|V|) memory for order-robustness;
// it degrades GRACEFULLY: when the cluster-id budget overflows (pathological
// inputs — e.g. edgeless graphs where every vertex is a singleton cluster)
// the result is flagged `degraded`, no hints are produced, and callers fall
// back to plain SPNL.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "partition/driver.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

struct TwoPhaseOptions {
  /// Cluster-id budget for phase 1; 0 = auto (max(64, |V|/4 + K)). A record
  /// that needs a fresh cluster once the budget is exhausted marks the
  /// prepass degraded (see file comment) instead of growing without bound.
  std::uint32_t max_clusters = 0;
  /// Per-cluster member cap as a multiple of |V|/K; must be > 0. Slightly
  /// above 1 so a cluster can hold one whole balanced community but can
  /// never swallow two — the failure mode a looser cap exhibits on planted
  /// graphs streamed in id order.
  double cluster_cap_factor = 1.1;
  /// Majority-cluster refinement restreams after the initial pass (0 = the
  /// single-scan prepass).
  int refine_passes = 2;
};

struct PrepassResult {
  /// Per-vertex partition hint in [0, K); empty when degraded (or |V| == 0).
  std::vector<PartitionId> hints;
  std::uint32_t num_clusters = 0;
  /// Cluster budget overflowed: no hints, caller runs plain SPNL.
  bool degraded = false;
  /// Vertices moved by the refinement passes.
  std::uint64_t reassigned = 0;
  /// Wall-clock cost of the prepass scans (excluded from the paper's PT,
  /// which starts at the scoring pass; report it alongside).
  double seconds = 0.0;
};

/// Phase 1 + cluster packing. Consumes the stream from its current position
/// and reset()s it between refinement passes; callers reset() beforehand if
/// reusing streams. Deterministic for a given stream order.
PrepassResult cluster_prepass(AdjacencyStream& stream,
                              const PartitionConfig& config,
                              const TwoPhaseOptions& options = {});

struct TwoPhaseRunResult {
  RunResult run;
  PrepassResult prepass;
};

/// The full SPNL+2PS pipeline: cluster_prepass, then a reset() and an SPNL
/// scoring pass with the hints injected as the logical table (plain SPNL
/// when the prepass degraded — run.partitioner_name tells which ran).
/// Checkpoint/resume/governor/stop wiring matches run_streaming; a resumed
/// run re-derives the identical hint table first (the prepass is
/// deterministic), so snapshots stay byte-compatible.
TwoPhaseRunResult two_phase_spnl_partition(
    AdjacencyStream& stream, const PartitionConfig& config,
    const TwoPhaseOptions& prepass_options = {}, SpnlOptions spnl_options = {},
    const StreamingCheckpointOptions& checkpoint = {},
    const std::string& resume_from = "", PerfStats* perf = nullptr,
    ResourceGovernor* governor = nullptr,
    const std::atomic<bool>* stop = nullptr);

}  // namespace spnl
