#include "prepass/two_phase.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "partition/range_partitioner.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

constexpr std::uint32_t kNoCluster = ~0u;

/// Sparse per-record vote tally over cluster ids: O(out-degree) per record,
/// cleared through the touched list so the dense array is paid for once.
class VoteCounter {
 public:
  explicit VoteCounter(std::uint32_t budget) : votes_(budget, 0) {}

  void add(std::uint32_t cluster) {
    if (votes_[cluster]++ == 0) touched_.push_back(cluster);
  }

  std::uint32_t count(std::uint32_t cluster) const { return votes_[cluster]; }

  /// Highest-vote cluster passing `admit`; ties to the lower cluster id.
  /// kNoCluster when nothing passes.
  template <typename Admit>
  std::uint32_t best(Admit admit) const {
    std::uint32_t best_cluster = kNoCluster;
    std::uint32_t best_votes = 0;
    for (const std::uint32_t c : touched_) {
      if (!admit(c)) continue;
      const std::uint32_t v = votes_[c];
      if (v > best_votes || (v == best_votes && c < best_cluster)) {
        best_votes = v;
        best_cluster = c;
      }
    }
    return best_cluster;
  }

  void clear() {
    for (const std::uint32_t c : touched_) votes_[c] = 0;
    touched_.clear();
  }

 private:
  std::vector<std::uint32_t> votes_;
  std::vector<std::uint32_t> touched_;
};

}  // namespace

PrepassResult cluster_prepass(AdjacencyStream& stream,
                              const PartitionConfig& config,
                              const TwoPhaseOptions& options) {
  if (config.num_partitions == 0) {
    throw std::invalid_argument("cluster_prepass: K must be >= 1");
  }
  if (options.cluster_cap_factor <= 0.0) {
    throw std::invalid_argument("cluster_prepass: cap factor must be > 0");
  }
  if (options.refine_passes < 0) {
    throw std::invalid_argument("cluster_prepass: refine_passes must be >= 0");
  }
  const Timer timer;
  const VertexId n = stream.num_vertices();
  const PartitionId k = config.num_partitions;
  PrepassResult result;
  if (n == 0) {
    result.seconds = timer.seconds();
    return result;
  }

  const std::uint32_t budget =
      options.max_clusters != 0
          ? options.max_clusters
          : std::max<std::uint32_t>(64, n / 4 + k);
  const auto cap = std::max<VertexId>(
      2, static_cast<VertexId>(options.cluster_cap_factor * n / k));

  std::vector<std::uint32_t> cluster_of(n, kNoCluster);
  std::vector<VertexId> cluster_size;
  cluster_size.reserve(std::min<std::uint32_t>(budget, 1 << 16));
  VoteCounter votes(budget);

  // Initial scan: join the majority cluster of the already-clustered
  // out-neighbors (respecting the cap), else found a new cluster; then seed
  // still-unclustered out-neighbors into the decided cluster.
  while (auto record = stream.next()) {
    const VertexId v = record->id;
    if (v >= n) {
      throw std::invalid_argument("cluster_prepass: stream record " +
                                  std::to_string(v) + " out of range");
    }
    std::uint32_t home = cluster_of[v];
    if (home == kNoCluster) {
      for (const VertexId u : record->out) {
        if (u < n && cluster_of[u] != kNoCluster) votes.add(cluster_of[u]);
      }
      home = votes.best(
          [&](std::uint32_t c) { return cluster_size[c] < cap; });
      votes.clear();
      if (home == kNoCluster) {
        if (cluster_size.size() >= budget) {
          // Cluster-id budget overflow: declare the prepass degraded and let
          // the caller fall back to plain SPNL — never crash, never return a
          // half-built hint table.
          result.degraded = true;
          result.num_clusters = static_cast<std::uint32_t>(cluster_size.size());
          result.seconds = timer.seconds();
          return result;
        }
        home = static_cast<std::uint32_t>(cluster_size.size());
        cluster_size.push_back(0);
      }
      cluster_of[v] = home;
      ++cluster_size[home];
    }
    for (const VertexId u : record->out) {
      if (u < n && u != v && cluster_of[u] == kNoCluster &&
          cluster_size[home] < cap) {
        cluster_of[u] = home;
        ++cluster_size[home];
      }
    }
  }

  // Refinement restreams: move each vertex to its majority cluster when that
  // strictly beats the current one (cap still enforced). Damps the damage
  // hostile stream orders do to the first scan's early, vote-less decisions.
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    stream.reset();
    while (auto record = stream.next()) {
      const VertexId v = record->id;
      const std::uint32_t home = cluster_of[v];
      for (const VertexId u : record->out) {
        if (u < n && cluster_of[u] != kNoCluster) votes.add(cluster_of[u]);
      }
      const std::uint32_t target = votes.best([&](std::uint32_t c) {
        return c == home || cluster_size[c] < cap;
      });
      if (target != kNoCluster && target != home &&
          votes.count(target) > votes.count(home)) {
        --cluster_size[home];
        ++cluster_size[target];
        cluster_of[v] = target;
        ++result.reassigned;
      }
      votes.clear();
    }
  }

  // Cluster packing: largest cluster first onto the least-loaded partition
  // (ties to the lower partition id) — the standard 2PS phase-2 seed.
  const auto num_clusters = static_cast<std::uint32_t>(cluster_size.size());
  std::vector<std::uint32_t> by_size(num_clusters);
  std::iota(by_size.begin(), by_size.end(), 0u);
  std::stable_sort(by_size.begin(), by_size.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return cluster_size[a] > cluster_size[b];
                   });
  std::vector<VertexId> partition_load(k, 0);
  std::vector<PartitionId> partition_of_cluster(num_clusters, 0);
  for (const std::uint32_t c : by_size) {
    PartitionId target = 0;
    for (PartitionId i = 1; i < k; ++i) {
      if (partition_load[i] < partition_load[target]) target = i;
    }
    partition_of_cluster[c] = target;
    partition_load[target] += cluster_size[c];
  }

  // Emit per-vertex hints. A vertex the stream never mentioned (possible on
  // hardened streams that quarantined its record) keeps the range default so
  // the hint table is always total.
  const RangeTable fallback(n, k);
  result.hints.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.hints[v] = cluster_of[v] == kNoCluster
                          ? fallback.partition_of(v)
                          : partition_of_cluster[cluster_of[v]];
  }
  result.num_clusters = num_clusters;
  result.seconds = timer.seconds();
  return result;
}

TwoPhaseRunResult two_phase_spnl_partition(
    AdjacencyStream& stream, const PartitionConfig& config,
    const TwoPhaseOptions& prepass_options, SpnlOptions spnl_options,
    const StreamingCheckpointOptions& checkpoint,
    const std::string& resume_from, PerfStats* perf,
    ResourceGovernor* governor, const std::atomic<bool>* stop) {
  TwoPhaseRunResult result;
  result.prepass = cluster_prepass(stream, config, prepass_options);
  stream.reset();

  const bool use_hints =
      !result.prepass.degraded && !result.prepass.hints.empty();
  if (use_hints) spnl_options.logical_hints = &result.prepass.hints;
  SpnlPartitioner partitioner(stream.num_vertices(), stream.num_edges(),
                              config, spnl_options);
  result.run =
      resume_from.empty()
          ? run_streaming(stream, partitioner, checkpoint, perf, governor, stop)
          : resume_streaming(stream, partitioner, resume_from, checkpoint, perf,
                             governor, stop);
  result.run.partitioner_name = use_hints ? "SPNL+2PS" : "SPNL";
  return result;
}

}  // namespace spnl
