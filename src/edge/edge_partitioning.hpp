// Streaming EDGE partitioning — the paper's stated future work (Sec. VII:
// "the quality optimization techniques actually can also work in edge
// partitioning").
//
// In edge partitioning each edge is assigned to exactly one partition and a
// vertex is replicated wherever its edges land; the quality metric is the
// replication factor RF = (Σ_v #replicas(v)) / |V| (lower is better), the
// edge-partitioning analogue of the cut ratio, plus edge balance.
//
// This module implements the standard streaming competitors (DBH, the
// PowerGraph greedy rule, HDRF) and HdrfL — HDRF enhanced with the paper's
// topology-locality idea (a logical range prior on vertex placement), the
// SPNL treatment transplanted to edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

/// Tracks which partitions have a replica of each vertex. K is limited to 64
/// so the partition set fits one mask word (every real deployment in the
/// paper uses K <= 32; edge partitioners commonly exploit this bound).
class ReplicaTable {
 public:
  ReplicaTable(VertexId num_vertices, PartitionId num_partitions);

  bool has_replica(VertexId v, PartitionId p) const {
    return (masks_[v] >> p) & 1ULL;
  }
  /// Adds the replica; returns true if it is new.
  bool add_replica(VertexId v, PartitionId p);
  int replica_count(VertexId v) const { return __builtin_popcountll(masks_[v]); }
  std::uint64_t mask(VertexId v) const { return masks_[v]; }
  std::uint64_t total_replicas() const { return total_; }

  std::size_t memory_footprint_bytes() const;

 private:
  std::vector<std::uint64_t> masks_;
  std::uint64_t total_ = 0;
};

/// A one-pass streaming edge partitioner: edges arrive as (from, to) pairs
/// (the adjacency stream flattened) and each is assigned irrevocably.
class EdgePartitioner {
 public:
  EdgePartitioner(VertexId num_vertices, EdgeId num_edges,
                  const PartitionConfig& config);
  virtual ~EdgePartitioner() = default;

  virtual PartitionId place_edge(VertexId from, VertexId to) = 0;
  virtual std::string name() const = 0;
  virtual std::size_t memory_footprint_bytes() const;

  const ReplicaTable& replicas() const { return replicas_; }
  EdgeId edge_count(PartitionId p) const { return edge_counts_[p]; }
  PartitionId num_partitions() const { return config_.num_partitions; }

  /// RF = total replicas / |V| over vertices seen so far.
  double replication_factor() const;

  /// max_i |E_i| * K / (edges placed).
  double edge_balance() const;

 protected:
  /// Record the decision: edge load and both endpoint replicas.
  void commit_edge(VertexId from, VertexId to, PartitionId p);

  bool edge_full(PartitionId p) const {
    return static_cast<double>(edge_counts_[p]) >= capacity_;
  }

  /// Least-loaded partition (the universal fallback).
  PartitionId least_loaded() const;

  const PartitionConfig config_;
  const VertexId num_vertices_;
  const double capacity_;
  ReplicaTable replicas_;
  std::vector<EdgeId> edge_counts_;
  EdgeId placed_edges_ = 0;
};

/// Quality summary of a completed edge partitioning.
struct EdgePartitionMetrics {
  double replication_factor = 0.0;
  double edge_balance = 0.0;
  std::uint64_t total_replicas = 0;
  EdgeId placed_edges = 0;
};

EdgePartitionMetrics evaluate_edge_partition(const EdgePartitioner& partitioner,
                                             VertexId num_vertices);

/// Drives a full adjacency stream through an edge partitioner (flattening
/// records to edges) and returns the elapsed seconds.
class AdjacencyStream;
double run_edge_streaming(AdjacencyStream& stream, EdgePartitioner& partitioner);

}  // namespace spnl
