// The concrete streaming edge partitioners.
//
//  * HashEdgePartitioner — hash of the edge pair; the RF upper baseline.
//  * DbhPartitioner — Degree-Based Hashing (Xie et al., NeurIPS'14): hash on
//    the endpoint with the smaller (partial, streaming) degree, so hubs are
//    the ones replicated.
//  * GreedyEdgePartitioner — the PowerGraph placement rule: prefer
//    partitions already holding both endpoints, then one, then least loaded.
//  * HdrfPartitioner — HDRF (Petroni et al., CIKM'15): greedy scored by
//    normalized partial degrees so the highest-degree endpoint gets cut,
//    plus a load-balance term weighted by mu.
//  * HdrfLPartitioner — HDRF + topology Locality: the paper's future-work
//    transplant. Adds a logical range prior (the SPNL idea) to the HDRF
//    score so edges whose endpoints logically belong to a partition's id
//    range prefer it, concentrating replicas range-wise.
#pragma once

#include <cstdint>

#include "edge/edge_partitioning.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {

class HashEdgePartitioner final : public EdgePartitioner {
 public:
  HashEdgePartitioner(VertexId num_vertices, EdgeId num_edges,
                      const PartitionConfig& config, std::uint64_t seed = 1);
  PartitionId place_edge(VertexId from, VertexId to) override;
  std::string name() const override { return "HashE"; }

 private:
  std::uint64_t seed_;
};

/// 2D (grid) hash partitioner (GraphBuilder/CYCLADES style): partitions are
/// arranged in a near-square grid; vertex v hashes to a "shard row", and the
/// edge (u, v) goes to the cell at (row(u), row(v)) folded into K. Bounds
/// every vertex's replication by O(2*sqrt(K)) regardless of degree — the
/// classic worst-case guarantee the scoring heuristics lack.
class Grid2dPartitioner final : public EdgePartitioner {
 public:
  Grid2dPartitioner(VertexId num_vertices, EdgeId num_edges,
                    const PartitionConfig& config, std::uint64_t seed = 1);
  PartitionId place_edge(VertexId from, VertexId to) override;
  std::string name() const override { return "Grid2D"; }

  PartitionId grid_side() const { return side_; }

 private:
  std::uint64_t seed_;
  PartitionId side_;  // ceil(sqrt(K))
};

class DbhPartitioner final : public EdgePartitioner {
 public:
  DbhPartitioner(VertexId num_vertices, EdgeId num_edges,
                 const PartitionConfig& config, std::uint64_t seed = 1);
  PartitionId place_edge(VertexId from, VertexId to) override;
  std::string name() const override { return "DBH"; }
  std::size_t memory_footprint_bytes() const override;

 private:
  std::uint64_t seed_;
  std::vector<std::uint32_t> partial_degree_;
};

class GreedyEdgePartitioner final : public EdgePartitioner {
 public:
  GreedyEdgePartitioner(VertexId num_vertices, EdgeId num_edges,
                        const PartitionConfig& config);
  PartitionId place_edge(VertexId from, VertexId to) override;
  std::string name() const override { return "GreedyE"; }
};

struct HdrfOptions {
  /// Balance weight; HDRF paper recommends ~1.
  double mu = 1.0;
  /// Locality weight for HdrfL (ignored by plain HDRF).
  double locality_weight = 0.5;
};

class HdrfPartitioner : public EdgePartitioner {
 public:
  HdrfPartitioner(VertexId num_vertices, EdgeId num_edges,
                  const PartitionConfig& config, HdrfOptions options = {});
  PartitionId place_edge(VertexId from, VertexId to) override;
  std::string name() const override { return "HDRF"; }
  std::size_t memory_footprint_bytes() const override;

 protected:
  /// The replication part of the HDRF score for one endpoint.
  double replica_score(VertexId v, VertexId other, PartitionId p) const;
  /// The load-balance part of the score.
  double balance_score(PartitionId p) const;

  HdrfOptions options_;
  std::vector<std::uint32_t> partial_degree_;
  mutable std::vector<double> scores_;
};

class HdrfLPartitioner final : public HdrfPartitioner {
 public:
  HdrfLPartitioner(VertexId num_vertices, EdgeId num_edges,
                   const PartitionConfig& config, HdrfOptions options = {});
  PartitionId place_edge(VertexId from, VertexId to) override;
  std::string name() const override { return "HDRF-L"; }

 private:
  RangeTable logical_;
};

}  // namespace spnl
