#include "edge/edge_partitioning.hpp"

#include <stdexcept>

#include "graph/adjacency_stream.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace spnl {

ReplicaTable::ReplicaTable(VertexId num_vertices, PartitionId num_partitions)
    : masks_(num_vertices, 0) {
  if (num_partitions == 0 || num_partitions > 64) {
    throw std::invalid_argument("ReplicaTable: K must be in [1, 64]");
  }
}

bool ReplicaTable::add_replica(VertexId v, PartitionId p) {
  const std::uint64_t bit = 1ULL << p;
  if (masks_[v] & bit) return false;
  masks_[v] |= bit;
  ++total_;
  return true;
}

std::size_t ReplicaTable::memory_footprint_bytes() const {
  return vector_bytes(masks_);
}

EdgePartitioner::EdgePartitioner(VertexId num_vertices, EdgeId num_edges,
                                 const PartitionConfig& config)
    : config_(config),
      num_vertices_(num_vertices),
      capacity_(partition_capacity(
          num_vertices, num_edges,
          PartitionConfig{config.num_partitions, BalanceMode::kEdge, config.slack})),
      replicas_(num_vertices, config.num_partitions),
      edge_counts_(config.num_partitions, 0) {}

std::size_t EdgePartitioner::memory_footprint_bytes() const {
  return replicas_.memory_footprint_bytes() + vector_bytes(edge_counts_);
}

double EdgePartitioner::replication_factor() const {
  // Count only vertices that actually have replicas (appeared in an edge).
  VertexId seen = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (replicas_.replica_count(v) > 0) ++seen;
  }
  return seen == 0 ? 0.0
                   : static_cast<double>(replicas_.total_replicas()) / seen;
}

double EdgePartitioner::edge_balance() const {
  if (placed_edges_ == 0) return 0.0;
  EdgeId max_load = 0;
  for (EdgeId load : edge_counts_) max_load = std::max(max_load, load);
  return static_cast<double>(max_load) * config_.num_partitions / placed_edges_;
}

void EdgePartitioner::commit_edge(VertexId from, VertexId to, PartitionId p) {
  if (p >= config_.num_partitions) {
    throw std::logic_error("EdgePartitioner: partition id out of range");
  }
  ++edge_counts_[p];
  ++placed_edges_;
  replicas_.add_replica(from, p);
  replicas_.add_replica(to, p);
}

PartitionId EdgePartitioner::least_loaded() const {
  PartitionId best = 0;
  for (PartitionId p = 1; p < config_.num_partitions; ++p) {
    if (edge_counts_[p] < edge_counts_[best]) best = p;
  }
  return best;
}

EdgePartitionMetrics evaluate_edge_partition(const EdgePartitioner& partitioner,
                                             VertexId num_vertices) {
  (void)num_vertices;
  EdgePartitionMetrics metrics;
  metrics.replication_factor = partitioner.replication_factor();
  metrics.edge_balance = partitioner.edge_balance();
  metrics.total_replicas = partitioner.replicas().total_replicas();
  for (PartitionId p = 0; p < partitioner.num_partitions(); ++p) {
    metrics.placed_edges += partitioner.edge_count(p);
  }
  return metrics;
}

double run_edge_streaming(AdjacencyStream& stream, EdgePartitioner& partitioner) {
  Timer timer;
  while (auto record = stream.next()) {
    for (VertexId u : record->out) partitioner.place_edge(record->id, u);
  }
  return timer.seconds();
}

}  // namespace spnl
