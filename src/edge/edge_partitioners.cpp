#include "edge/edge_partitioners.hpp"

#include <algorithm>

#include "util/memory.hpp"
#include "util/rng.hpp"

namespace spnl {

HashEdgePartitioner::HashEdgePartitioner(VertexId num_vertices, EdgeId num_edges,
                                         const PartitionConfig& config,
                                         std::uint64_t seed)
    : EdgePartitioner(num_vertices, num_edges, config), seed_(seed) {}

PartitionId HashEdgePartitioner::place_edge(VertexId from, VertexId to) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  const auto p = static_cast<PartitionId>(mix64(seed_ ^ key) % num_partitions());
  commit_edge(from, to, p);
  return p;
}

Grid2dPartitioner::Grid2dPartitioner(VertexId num_vertices, EdgeId num_edges,
                                     const PartitionConfig& config,
                                     std::uint64_t seed)
    : EdgePartitioner(num_vertices, num_edges, config), seed_(seed) {
  side_ = 1;
  while (side_ * side_ < config.num_partitions) ++side_;
}

PartitionId Grid2dPartitioner::place_edge(VertexId from, VertexId to) {
  const auto row = static_cast<PartitionId>(mix64(seed_ ^ from) % side_);
  const auto col = static_cast<PartitionId>(mix64(seed_ ^ to) % side_);
  // Fold the square grid into K cells (K may not be a perfect square).
  const PartitionId p =
      static_cast<PartitionId>((row * side_ + col) % num_partitions());
  commit_edge(from, to, p);
  return p;
}

DbhPartitioner::DbhPartitioner(VertexId num_vertices, EdgeId num_edges,
                               const PartitionConfig& config, std::uint64_t seed)
    : EdgePartitioner(num_vertices, num_edges, config),
      seed_(seed),
      partial_degree_(num_vertices, 0) {}

PartitionId DbhPartitioner::place_edge(VertexId from, VertexId to) {
  ++partial_degree_[from];
  ++partial_degree_[to];
  // Hash on the LOWER-degree endpoint: the hub endpoint then spreads across
  // partitions (hubs are replicated anyway) while the tail endpoint's edges
  // stay together.
  const VertexId anchor =
      partial_degree_[from] <= partial_degree_[to] ? from : to;
  const auto p = static_cast<PartitionId>(mix64(seed_ ^ anchor) % num_partitions());
  commit_edge(from, to, p);
  return p;
}

std::size_t DbhPartitioner::memory_footprint_bytes() const {
  return EdgePartitioner::memory_footprint_bytes() + vector_bytes(partial_degree_);
}

GreedyEdgePartitioner::GreedyEdgePartitioner(VertexId num_vertices, EdgeId num_edges,
                                             const PartitionConfig& config)
    : EdgePartitioner(num_vertices, num_edges, config) {}

PartitionId GreedyEdgePartitioner::place_edge(VertexId from, VertexId to) {
  // PowerGraph rules, with the hard capacity as a filter:
  //  1. some partition holds both endpoints -> least loaded of those;
  //  2. some partition holds one endpoint -> least loaded of those;
  //  3. otherwise least loaded overall.
  const std::uint64_t both = replicas_.mask(from) & replicas_.mask(to);
  const std::uint64_t either = replicas_.mask(from) | replicas_.mask(to);
  for (std::uint64_t candidates : {both, either}) {
    PartitionId best = kUnassigned;
    for (PartitionId p = 0; p < num_partitions(); ++p) {
      if (!((candidates >> p) & 1ULL) || edge_full(p)) continue;
      if (best == kUnassigned || edge_counts_[p] < edge_counts_[best]) best = p;
    }
    if (best != kUnassigned) {
      commit_edge(from, to, best);
      return best;
    }
  }
  const PartitionId p = least_loaded();
  commit_edge(from, to, p);
  return p;
}

HdrfPartitioner::HdrfPartitioner(VertexId num_vertices, EdgeId num_edges,
                                 const PartitionConfig& config, HdrfOptions options)
    : EdgePartitioner(num_vertices, num_edges, config),
      options_(options),
      partial_degree_(num_vertices, 0),
      scores_(config.num_partitions, 0.0) {}

double HdrfPartitioner::replica_score(VertexId v, VertexId other,
                                      PartitionId p) const {
  if (!replicas_.has_replica(v, p)) return 0.0;
  // Normalized partial degree: favor keeping the LOW degree endpoint whole
  // (1 + 1 - theta where theta is v's share of the pair's degree).
  const double dv = partial_degree_[v];
  const double du = partial_degree_[other];
  const double theta = dv / (dv + du);
  return 1.0 + (1.0 - theta);
}

double HdrfPartitioner::balance_score(PartitionId p) const {
  EdgeId max_load = 0, min_load = edge_counts_[0];
  for (EdgeId load : edge_counts_) {
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  const double spread = static_cast<double>(max_load) - min_load + 1.0;
  return options_.mu * (max_load - static_cast<double>(edge_counts_[p])) / spread;
}

PartitionId HdrfPartitioner::place_edge(VertexId from, VertexId to) {
  ++partial_degree_[from];
  ++partial_degree_[to];
  PartitionId best = kUnassigned;
  double best_score = 0.0;
  for (PartitionId p = 0; p < num_partitions(); ++p) {
    if (edge_full(p)) continue;
    const double score = replica_score(from, to, p) + replica_score(to, from, p) +
                         balance_score(p);
    if (best == kUnassigned || score > best_score ||
        (score == best_score && edge_counts_[p] < edge_counts_[best])) {
      best = p;
      best_score = score;
    }
  }
  if (best == kUnassigned) best = least_loaded();
  commit_edge(from, to, best);
  return best;
}

std::size_t HdrfPartitioner::memory_footprint_bytes() const {
  return EdgePartitioner::memory_footprint_bytes() + vector_bytes(partial_degree_) +
         vector_bytes(scores_);
}

HdrfLPartitioner::HdrfLPartitioner(VertexId num_vertices, EdgeId num_edges,
                                   const PartitionConfig& config, HdrfOptions options)
    : HdrfPartitioner(num_vertices, num_edges, config, options),
      logical_(num_vertices, config.num_partitions) {}

PartitionId HdrfLPartitioner::place_edge(VertexId from, VertexId to) {
  ++partial_degree_[from];
  ++partial_degree_[to];
  // The SPNL transplant: a logical range prior nudges each edge toward the
  // partition its endpoints' id range maps to, concentrating replicas in
  // contiguous ranges on crawl-numbered graphs.
  const PartitionId logical_from = logical_.partition_of(from);
  const PartitionId logical_to = logical_.partition_of(to);
  PartitionId best = kUnassigned;
  double best_score = 0.0;
  for (PartitionId p = 0; p < num_partitions(); ++p) {
    if (edge_full(p)) continue;
    double score = replica_score(from, to, p) + replica_score(to, from, p) +
                   balance_score(p);
    if (p == logical_from) score += options_.locality_weight;
    if (p == logical_to) score += options_.locality_weight;
    if (best == kUnassigned || score > best_score ||
        (score == best_score && edge_counts_[p] < edge_counts_[best])) {
      best = p;
      best_score = score;
    }
  }
  if (best == kUnassigned) best = least_loaded();
  commit_edge(from, to, best);
  return best;
}

}  // namespace spnl
