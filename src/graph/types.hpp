// Fundamental identifiers shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace spnl {

/// Vertex identifier. The paper assumes vertices are consecutively numbered
/// 0..|V|-1 (Sec. II); all loaders normalize to this.
using VertexId = std::uint32_t;

/// Edge count / edge index. Graphs can exceed 2^32 edges.
using EdgeId = std::uint64_t;

/// Partition identifier; the paper's K ranges up to a few hundred.
using PartitionId = std::uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kUnassigned = std::numeric_limits<PartitionId>::max();

}  // namespace spnl
