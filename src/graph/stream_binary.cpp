#include "graph/stream_binary.hpp"

#include <csetjmp>
#include <cstring>
#include <limits>

#include "graph/io.hpp"
#include "util/checked_io.hpp"
#include "util/sigbus_guard.hpp"

namespace spnl {

namespace sadj {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_signed(std::vector<std::uint8_t>& out, std::int64_t value) {
  const std::uint64_t zigzag =
      (static_cast<std::uint64_t>(value) << 1) ^
      static_cast<std::uint64_t>(value >> 63);
  put_varint(out, zigzag);
}

bool get_varint(const std::uint8_t*& p, const std::uint8_t* end,
                std::uint64_t& value) {
  value = 0;
  int shift = 0;
  while (p < end) {
    const std::uint8_t byte = *p++;
    if (shift == 63 && (byte & 0x7E) != 0) return false;  // > 64 bits
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift > 63) return false;  // overlong encoding
  }
  return false;  // truncated
}

bool get_signed(const std::uint8_t*& p, const std::uint8_t* end,
                std::int64_t& value) {
  std::uint64_t zigzag = 0;
  if (!get_varint(p, end, zigzag)) return false;
  value = static_cast<std::int64_t>(zigzag >> 1) ^
          -static_cast<std::int64_t>(zigzag & 1);
  return true;
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

}  // namespace sadj

namespace {

// Hot-path varint decode for next(): the one- and two-byte encodings (the
// overwhelming majority under delta compression — the benchmark crawl
// averages ~1.3 bytes per varint) decode with a single branch each; anything
// longer, and anything near the mapping's end, falls through to the fully
// validated sadj::get_varint. Semantics are identical: the fast paths can
// only accept encodings the slow path accepts too.
inline bool read_varint(const std::uint8_t*& p, const std::uint8_t* end,
                        std::uint64_t& value) {
  const std::ptrdiff_t avail = end - p;
  if (avail >= 1 && p[0] < 0x80) {
    value = p[0];
    ++p;
    return true;
  }
  if (avail >= 2 && p[1] < 0x80) {
    value = static_cast<std::uint64_t>(p[0] & 0x7F) |
            (static_cast<std::uint64_t>(p[1]) << 7);
    p += 2;
    return true;
  }
  return sadj::get_varint(p, end, value);
}

inline bool read_signed(const std::uint8_t*& p, const std::uint8_t* end,
                        std::int64_t& value) {
  std::uint64_t zigzag = 0;
  if (!read_varint(p, end, zigzag)) return false;
  value = static_cast<std::int64_t>(zigzag >> 1) ^
          -static_cast<std::int64_t>(zigzag & 1);
  return true;
}

// Jump target for a SigbusGuard trip: the mapped file shrank under us and a
// decode touched a page past the new EOF. Thrown (not returned to) via
// siglongjmp, so keep it trivially [[noreturn]].
[[noreturn]] void truncated_under_reader(const std::string& path,
                                         const SigbusGuard& guard) {
  throw IoError(path + ": mapping faulted (SIGBUS) at offset " +
                std::to_string(guard.fault_offset()) +
                " — file truncated while streamed");
}

}  // namespace

std::uint64_t write_sadj(AdjacencyStream& stream, const std::string& path) {
  // Crash-atomic publish (the PR-1 checkpoint protocol): bytes land in
  // <path>.tmp through the checked fault-injectable writer, R is patched
  // into the tmp header, and only a complete fsynced file is renamed over
  // the destination. A crash — or an injected kill-9 — at any syscall
  // boundary leaves the previous file intact; it is never truncated in
  // place while a half-written replacement streams out.
  AtomicFileWriter atomic(path);
  FdWriter& out = atomic.out();

  // Header with R = 0 for now; patched after the drain. E is trusted from
  // the stream's metadata and cross-checked against the edges actually
  // written — a mismatch means the source stream lied about its counts, and
  // baking the lie into a binary header would defeat the reader's validation.
  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), sadj::kMagic, sadj::kMagic + 8);
  sadj::put_u32(buf, sadj::kVersion);
  sadj::put_u32(buf, 0);  // flags
  sadj::put_u64(buf, stream.num_vertices());
  sadj::put_u64(buf, stream.num_edges());
  sadj::put_u64(buf, 0);  // R placeholder
  out.append(buf.data(), buf.size());

  std::uint64_t records = 0;
  std::uint64_t edges = 0;
  std::int64_t prev_id = -1;
  buf.clear();
  while (auto record = stream.next()) {
    sadj::put_signed(buf, static_cast<std::int64_t>(record->id) - prev_id);
    prev_id = static_cast<std::int64_t>(record->id);
    sadj::put_varint(buf, record->out.size());
    std::int64_t prev_nbr = prev_id;
    for (VertexId nbr : record->out) {
      sadj::put_signed(buf, static_cast<std::int64_t>(nbr) - prev_nbr);
      prev_nbr = static_cast<std::int64_t>(nbr);
    }
    edges += record->out.size();
    ++records;
    if (buf.size() >= (1u << 20)) {
      out.append(buf.data(), buf.size());
      buf.clear();
    }
  }
  if (!buf.empty()) out.append(buf.data(), buf.size());
  if (edges != stream.num_edges()) {
    throw IoError("write_sadj: stream metadata says " +
                  std::to_string(stream.num_edges()) + " edges but " +
                  std::to_string(edges) + " were streamed");
  }

  // Patch R into the tmp file, then publish.
  buf.clear();
  sadj::put_u64(buf, records);
  out.patch(32, buf.data(), 8);
  atomic.commit();
  return records;
}

BinaryAdjacencyStream::BinaryAdjacencyStream(const std::string& path)
    : map_(path) {
  if (map_.size() < sadj::kHeaderBytes) {
    corrupt("file shorter than the 40-byte header");
  }
  // The header reads below dereference the mapping: guard them so a file
  // truncated between fstat and first touch is a typed error, not SIGBUS.
  SigbusGuard guard(map_.data(), map_.size());
  if (sigsetjmp(guard.env(), 0) != 0) truncated_under_reader(map_.path(), guard);
  const std::uint8_t* base = reinterpret_cast<const std::uint8_t*>(map_.data());
  if (std::memcmp(base, sadj::kMagic, 8) != 0) {
    corrupt("bad magic (not a .sadj file)");
  }
  const std::uint32_t version = sadj::get_u32(base + 8);
  if (version != sadj::kVersion) {
    corrupt("unsupported version " + std::to_string(version) + " (expected " +
            std::to_string(sadj::kVersion) + ")");
  }
  const std::uint32_t flags = sadj::get_u32(base + 12);
  if (flags != 0) {
    corrupt("unknown flags 0x" + std::to_string(flags));
  }
  const std::uint64_t v = sadj::get_u64(base + 16);
  num_edges_ = sadj::get_u64(base + 24);
  num_records_ = sadj::get_u64(base + 32);
  if (v > std::numeric_limits<VertexId>::max()) {
    corrupt("vertex count overflows VertexId");
  }
  num_vertices_ = static_cast<VertexId>(v);
  if (num_records_ > v) {
    corrupt("record count exceeds vertex count");
  }
  // Every record costs at least 2 bytes (id delta + degree), every edge at
  // least 1 — a header promising more than the body could hold is truncation.
  // (num_records_ <= v < 2^32 here, so the arithmetic cannot overflow once
  // num_edges_ is known to fit in the body.)
  const std::uint64_t body = map_.size() - sadj::kHeaderBytes;
  if (num_edges_ > body || num_records_ * 2 + num_edges_ > body) {
    corrupt("truncated: body smaller than the header's counts imply");
  }
  reset();
}

void BinaryAdjacencyStream::reset() {
  // A multi-pass caller restarting on a file that was truncated between
  // passes gets a typed error here, before any page past EOF is touched.
  map_.throw_if_shrunk();
  cursor_ = reinterpret_cast<const std::uint8_t*>(map_.data()) +
            sadj::kHeaderBytes;
  prev_id_ = -1;
  records_read_ = 0;
  edges_read_ = 0;
}

void BinaryAdjacencyStream::corrupt(const std::string& what) const {
  throw IoError("BinaryAdjacencyStream: " + map_.path() + ": " + what);
}

std::optional<VertexRecord> BinaryAdjacencyStream::next() {
  const std::uint8_t* end =
      reinterpret_cast<const std::uint8_t*>(map_.data()) + map_.size();
  if (records_read_ == num_records_) {
    if (cursor_ != end) corrupt("trailing bytes after the last record");
    return std::nullopt;
  }

  // SIGBUS-safe decode: a file truncated while we stream it surfaces as a
  // typed IoError instead of killing the process. Decode state lives in
  // members and pre-declared locals, so the siglongjmp skipping destructors
  // of post-setjmp objects cannot leak anything but a dead stream's buffer.
  SigbusGuard guard(map_.data(), map_.size());
  if (sigsetjmp(guard.env(), 0) != 0) truncated_under_reader(map_.path(), guard);

  // Decode through a local pointer so the compiler keeps it in a register
  // across the neighbor loop; committed back to cursor_ only on success.
  const std::uint8_t* p = cursor_;
  std::int64_t delta = 0;
  if (!read_signed(p, end, delta)) corrupt("truncated record id");
  const std::int64_t id = prev_id_ + delta;
  if (id < 0 || id > std::numeric_limits<VertexId>::max()) {
    corrupt("record id out of range");
  }
  prev_id_ = id;

  std::uint64_t degree = 0;
  if (!read_varint(p, end, degree)) corrupt("truncated degree");
  if (degree > num_edges_ - edges_read_) {
    corrupt("degree exceeds the header's remaining edge budget");
  }

  // The buffer only ever grows to the max degree seen; neighbors are written
  // by index to skip push_back's per-element capacity check.
  if (buffer_.size() < degree) buffer_.resize(degree);
  VertexId* dst = buffer_.data();
  std::int64_t prev_nbr = id;
  constexpr std::uint64_t kMaxId = std::numeric_limits<VertexId>::max();
  // A varint occupies at most 10 bytes, so when the remaining mapping holds
  // 10 bytes per neighbor no decode in this record can run off the end —
  // skip the per-byte bounds checks entirely. Only the file's tail (or a
  // truncated body) takes the checked loop. The negative-id test folds into
  // one unsigned compare: a negative nbr casts to > kMaxId.
  // 10 * degree cannot overflow: the ctor bounds degree by num_edges_,
  // which it bounds by the body size (< 2^60 for any real file).
  if (static_cast<std::uint64_t>(end - p) >= 10 * degree) {
    for (std::uint64_t i = 0; i < degree; ++i) {
      // Branchless 1-/2-byte decode: the delta mix makes "is this varint
      // two bytes?" a coin flip, so a data dependency beats a mispredicted
      // branch. `two` selects whether p[1] contributes (masked add) and how
      // far to advance; only the rare >= 3-byte delta takes a real branch,
      // and that one predicts not-taken essentially always.
      const std::uint64_t b0 = p[0];
      const std::uint64_t b1 = p[1];
      const std::uint64_t two = b0 >> 7;
      std::uint64_t zigzag =
          (b0 & 0x7F) | ((b1 << 7) & (0 - two));
      p += 1 + two;
      if (two & (b1 >> 7)) [[unlikely]] {
        p -= 2;  // wide delta: re-decode fully validated
        if (!sadj::get_varint(p, end, zigzag)) corrupt("truncated neighbor");
      }
      const std::int64_t nbr =
          prev_nbr + (static_cast<std::int64_t>(zigzag >> 1) ^
                      -static_cast<std::int64_t>(zigzag & 1));
      if (static_cast<std::uint64_t>(nbr) > kMaxId) [[unlikely]] {
        corrupt("neighbor id out of range");
      }
      dst[i] = static_cast<VertexId>(nbr);
      prev_nbr = nbr;
    }
  } else {
    for (std::uint64_t i = 0; i < degree; ++i) {
      if (!read_signed(p, end, delta)) corrupt("truncated neighbor");
      const std::int64_t nbr = prev_nbr + delta;
      if (static_cast<std::uint64_t>(nbr) > kMaxId) {
        corrupt("neighbor id out of range");
      }
      dst[i] = static_cast<VertexId>(nbr);
      prev_nbr = nbr;
    }
  }
  cursor_ = p;
  edges_read_ += degree;
  ++records_read_;
  if (records_read_ == num_records_) {
    if (edges_read_ != num_edges_) {
      corrupt("edge count disagrees with the header");
    }
    if (cursor_ != end) corrupt("trailing bytes after the last record");
  }
  return VertexRecord{static_cast<VertexId>(id),
                      std::span<const VertexId>(buffer_.data(), degree)};
}

}  // namespace spnl
