// The "sadj" delta-compressed binary adjacency format and its mmap reader.
//
// Layout (all integers little-endian):
//   offset  size  field
//        0     8  magic "SPNLSADJ"
//        8     4  version (currently 1)
//       12     4  flags (must be 0)
//       16     8  V  — num_vertices (capacity metadata, as in the text header)
//       24     8  E  — total out-edges across all records
//       32     8  R  — record count (text streams may emit fewer than V)
//       40     …  R records
//
// Each record:
//   zigzag-varint  id delta from the previous record id (previous starts at
//                  -1, so an id-ordered stream encodes every delta as +1 in
//                  one byte)
//   varint         out-degree d
//   d × zigzag-varint  neighbor deltas: the first from the record id, each
//                  subsequent from the previous neighbor — in the *original
//                  stream order*, never sorted, so duplicates (multigraphs),
//                  self-loops and order-sensitive float accumulation in the
//                  scoring kernel all survive a round-trip bit-exactly.
//
// The reader maps the file and decodes lazily, one record per next() call, so
// resident set stays at the decode buffer plus whatever clean file pages the
// kernel keeps — graphs larger than RAM stream fine. Structural validation is
// strict: bad magic, unknown version/flags, truncated varints, degree or
// record counts disagreeing with the header, or trailing bytes all throw
// IoError. A corrupt .sadj is a broken converter artifact, not line noise, so
// it is never quarantined.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "graph/mmap_file.hpp"

namespace spnl {

namespace sadj {

inline constexpr char kMagic[8] = {'S', 'P', 'N', 'L', 'S', 'A', 'D', 'J'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 40;

/// Appends `value` as a LEB128 varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Appends `value` zigzag-mapped then varint-encoded.
void put_signed(std::vector<std::uint8_t>& out, std::int64_t value);

/// Decodes a varint from [p, end); advances p. False on truncation/overlong.
bool get_varint(const std::uint8_t*& p, const std::uint8_t* end,
                std::uint64_t& value);

/// Decodes a zigzag varint from [p, end); advances p.
bool get_signed(const std::uint8_t*& p, const std::uint8_t* end,
                std::int64_t& value);

}  // namespace sadj

/// Drains `stream` (from its current position; call reset() first for a full
/// pass) into a .sadj file at `path`. Returns the number of records written.
/// The V/E header fields are taken from the stream's metadata; R is counted.
std::uint64_t write_sadj(AdjacencyStream& stream, const std::string& path);

/// mmap-backed reader for .sadj files. Validates the header eagerly (bad
/// magic / version / flags / impossible sizes throw IoError at construction)
/// and the body incrementally as records decode.
class BinaryAdjacencyStream final : public AdjacencyStream {
 public:
  explicit BinaryAdjacencyStream(const std::string& path);

  std::optional<VertexRecord> next() override;
  void reset() override;
  VertexId num_vertices() const override { return num_vertices_; }
  EdgeId num_edges() const override { return num_edges_; }
  std::size_t memory_footprint_bytes() const override {
    // The decode buffer is the only owned heap; mapped pages are clean and
    // reclaimable (see MmapFile::owned_bytes).
    return buffer_.capacity() * sizeof(VertexId);
  }

  std::uint64_t num_records() const { return num_records_; }

 private:
  [[noreturn]] void corrupt(const std::string& what) const;

  MmapFile map_;
  const std::uint8_t* cursor_ = nullptr;
  std::vector<VertexId> buffer_;
  std::int64_t prev_id_ = -1;
  std::uint64_t records_read_ = 0;
  std::uint64_t edges_read_ = 0;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  std::uint64_t num_records_ = 0;
};

}  // namespace spnl
