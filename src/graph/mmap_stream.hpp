// Zero-copy text readers: the same adjacency-list and edge-list formats as
// FileAdjacencyStream / EdgeListAdjacencyStream, but parsed by walking
// pointers over an mmap'd file with std::from_chars — no getline, no line
// copies. Drop-in replacements: identical header handling ("# V <n> E <m>"),
// comment/blank-line rules, quarantine semantics, and record order, so routes
// are byte-identical to the buffered readers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "graph/mmap_file.hpp"

namespace spnl {

/// mmap-backed equivalent of FileAdjacencyStream ("<id> <out1> <out2> ..."
/// lines, '#' comments, optional "# V <n> E <m>" header).
class MmapAdjacencyStream final : public AdjacencyStream {
 public:
  explicit MmapAdjacencyStream(const std::string& path,
                               StreamHardeningOptions hardening = {});

  std::optional<VertexRecord> next() override;
  void reset() override;
  VertexId num_vertices() const override { return num_vertices_; }
  EdgeId num_edges() const override { return num_edges_; }
  std::size_t memory_footprint_bytes() const override {
    // Only the id buffer is owned heap; the mapping is file-backed and clean
    // (see MmapFile::owned_bytes).
    return buffer_.capacity() * sizeof(VertexId);
  }

  /// Malformed lines quarantined so far in the current pass.
  std::uint64_t bad_records() const override { return quarantine_.count(); }
  std::uint64_t quarantine_log_drops() const override {
    return quarantine_.log_drops();
  }

 private:
  MmapFile map_;
  const char* cursor_ = nullptr;
  std::vector<VertexId> buffer_;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  BadRecordQuarantine quarantine_;
};

/// mmap-backed equivalent of EdgeListAdjacencyStream (source-grouped
/// "<from> <to>" lines assembled into adjacency records, gap vertices
/// emitted empty).
class MmapEdgeListStream final : public AdjacencyStream {
 public:
  explicit MmapEdgeListStream(const std::string& path,
                              StreamHardeningOptions hardening = {});

  std::optional<VertexRecord> next() override;
  void reset() override;
  VertexId num_vertices() const override { return num_vertices_; }
  EdgeId num_edges() const override { return num_edges_; }
  std::size_t memory_footprint_bytes() const override {
    return buffer_.capacity() * sizeof(VertexId);
  }

  /// Malformed lines quarantined so far in the current pass.
  std::uint64_t bad_records() const override { return quarantine_.count(); }
  std::uint64_t quarantine_log_drops() const override {
    return quarantine_.log_drops();
  }

 private:
  /// Reads the next "from to" pair into pending_; false at EOF.
  bool read_pair();

  MmapFile map_;
  const char* pair_cursor_ = nullptr;
  std::vector<VertexId> buffer_;
  VertexId cursor_ = 0;  // next vertex id to emit
  bool have_pending_ = false;
  VertexId pending_from_ = 0;
  VertexId pending_to_ = 0;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  BadRecordQuarantine quarantine_;
};

}  // namespace spnl
