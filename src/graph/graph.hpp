// In-memory directed graph in CSR (compressed sparse row) layout.
//
// This is the substrate every partitioner and metric in the library operates
// on. Out-neighbors are primary (adjacency lists, as streamed); the reverse
// (in-neighbor) CSR can be materialized on demand for metrics and for the
// offline baselines, which need undirected views.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace spnl {

/// Immutable CSR digraph. Construct via GraphBuilder or the loaders in io.hpp.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prevalidated CSR arrays. offsets.size() == n+1,
  /// offsets.front() == 0, offsets.back() == targets.size(), rows sorted is
  /// NOT required (stream order is preserved).
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> targets);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId num_edges() const { return targets_.size(); }

  /// Out-neighbors of v (the adjacency list exactly as streamed).
  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  EdgeId out_degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  EdgeId max_out_degree() const;

  /// Reverse graph: edge (u,v) here becomes (v,u) there. O(|V|+|E|).
  Graph reversed() const;

  /// Undirected symmetrization with duplicate edges removed (used by the
  /// offline multilevel baseline, which operates on undirected graphs).
  Graph symmetrized() const;

  /// Heap bytes held by the CSR arrays.
  std::size_t memory_footprint_bytes() const;

  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }

 private:
  std::vector<EdgeId> offsets_;   // size n+1
  std::vector<VertexId> targets_; // size |E|
};

/// Incremental builder; vertices may be added out of order via add_edge, or
/// record-at-a-time via add_vertex. Duplicate edges and self-loops are kept
/// unless the corresponding strip options are set at finish().
class GraphBuilder {
 public:
  /// num_vertices may grow automatically if edges reference larger ids.
  explicit GraphBuilder(VertexId num_vertices = 0);

  void add_edge(VertexId from, VertexId to);

  /// Append a whole adjacency list for the next vertex id in sequence.
  void add_vertex(VertexId v, std::span<const VertexId> out);

  struct FinishOptions {
    bool strip_self_loops = false;
    bool strip_duplicate_edges = false;
  };

  /// Builds the CSR. The builder is left empty afterwards.
  Graph finish(FinishOptions options);
  Graph finish() { return finish(FinishOptions{}); }

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return edges_.size(); }

 private:
  VertexId num_vertices_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace spnl
