#include "graph/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "graph/io.hpp"

namespace spnl {

MmapFile::MmapFile(const std::string& path) : path_(path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    throw IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw IoError("cannot mmap " + path + ": not a regular file");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      throw IoError("cannot mmap " + path + ": " + std::strerror(err));
    }
    // Advisory only: readers walk front to back exactly once, so ask for
    // aggressive readahead and let the kernel drop pages behind the cursor.
    ::madvise(map, size_, MADV_SEQUENTIAL);
    data_ = static_cast<const char*>(map);
  }
  // The mapping outlives the descriptor.
  ::close(fd);
}

MmapFile::~MmapFile() { unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : path_(std::move(other.path_)), data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::unmap() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace spnl
