#include "graph/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <utility>

#include "graph/io.hpp"
#include "util/fault_fs.hpp"

namespace spnl {

MmapFile::MmapFile(const std::string& path) : path_(path) {
  int fd = faultfs::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    throw IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw IoError("cannot mmap " + path + ": not a regular file");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = faultfs::mmap_file(size_, PROT_READ, MAP_PRIVATE, fd);
    if (map == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      throw IoError("cannot mmap " + path + ": " + std::strerror(err));
    }
    // Advisory only: readers walk front to back exactly once, so ask for
    // aggressive readahead and let the kernel drop pages behind the cursor.
    ::madvise(map, size_, MADV_SEQUENTIAL);
    data_ = static_cast<const char*>(map);
  }
  // The mapping outlives the descriptor.
  ::close(fd);
}

MmapFile::~MmapFile() { unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : path_(std::move(other.path_)), data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::throw_if_shrunk() const {
  if (data_ == nullptr) return;
  struct stat st{};
  if (::stat(path_.c_str(), &st) != 0) {
    throw IoError("cannot stat " + path_ + " (file vanished under the mapping): " +
                  std::strerror(errno));
  }
  if (static_cast<std::uint64_t>(st.st_size) < size_) {
    throw IoError(path_ + ": file truncated while mapped (" +
                  std::to_string(st.st_size) + " of " + std::to_string(size_) +
                  " mapped bytes remain on disk)");
  }
}

void MmapFile::unmap() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace spnl
