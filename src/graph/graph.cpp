#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/memory.hpp"

namespace spnl {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  if (offsets_.empty()) {
    if (!targets_.empty()) throw std::invalid_argument("Graph: targets without offsets");
    return;
  }
  if (offsets_.front() != 0 || offsets_.back() != targets_.size()) {
    throw std::invalid_argument("Graph: inconsistent CSR offsets");
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) {
      throw std::invalid_argument("Graph: decreasing CSR offsets");
    }
  }
  const VertexId n = num_vertices();
  for (VertexId t : targets_) {
    if (t >= n) throw std::invalid_argument("Graph: edge target out of range");
  }
}

EdgeId Graph::max_out_degree() const {
  EdgeId best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, out_degree(v));
  return best;
}

Graph Graph::reversed() const {
  const VertexId n = num_vertices();
  std::vector<EdgeId> roff(n + 1, 0);
  for (VertexId t : targets_) ++roff[t + 1];
  for (VertexId v = 0; v < n; ++v) roff[v + 1] += roff[v];
  std::vector<VertexId> rtgt(targets_.size());
  std::vector<EdgeId> cursor(roff.begin(), roff.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : out_neighbors(v)) rtgt[cursor[u]++] = v;
  }
  return Graph(std::move(roff), std::move(rtgt));
}

Graph Graph::symmetrized() const {
  const VertexId n = num_vertices();
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : out_neighbors(v)) {
      if (u == v) continue;
      builder.add_edge(v, u);
      builder.add_edge(u, v);
    }
  }
  return builder.finish({.strip_self_loops = true, .strip_duplicate_edges = true});
}

std::size_t Graph::memory_footprint_bytes() const {
  return vector_bytes(offsets_) + vector_bytes(targets_);
}

GraphBuilder::GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

void GraphBuilder::add_edge(VertexId from, VertexId to) {
  if (from == kInvalidVertex || to == kInvalidVertex) {
    throw std::invalid_argument("GraphBuilder: invalid vertex id");
  }
  num_vertices_ = std::max({num_vertices_, from + 1, to + 1});
  edges_.emplace_back(from, to);
}

void GraphBuilder::add_vertex(VertexId v, std::span<const VertexId> out) {
  num_vertices_ = std::max(num_vertices_, v + 1);
  for (VertexId u : out) add_edge(v, u);
}

Graph GraphBuilder::finish(FinishOptions options) {
  // Counting sort by source preserves per-vertex insertion order of targets,
  // which matters: streams replay adjacency lists in their original order.
  const VertexId n = num_vertices_;
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [from, to] : edges_) {
    if (options.strip_self_loops && from == to) continue;
    ++offsets[from + 1];
  }
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> targets(offsets[n]);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [from, to] : edges_) {
    if (options.strip_self_loops && from == to) continue;
    targets[cursor[from]++] = to;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  if (options.strip_duplicate_edges) {
    std::vector<EdgeId> doff(static_cast<std::size_t>(n) + 1, 0);
    std::vector<VertexId> dtgt;
    dtgt.reserve(targets.size());
    std::unordered_set<VertexId> seen;
    for (VertexId v = 0; v < n; ++v) {
      seen.clear();
      for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
        if (seen.insert(targets[e]).second) dtgt.push_back(targets[e]);
      }
      doff[v + 1] = dtgt.size();
    }
    offsets = std::move(doff);
    targets = std::move(dtgt);
  }

  num_vertices_ = 0;
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace spnl
