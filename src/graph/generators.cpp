#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace spnl {

namespace {

/// Bounded Pareto out-degree draw with tail index alpha and target mean.
/// Pareto(x_min, alpha) has mean x_min * alpha / (alpha - 1), so x_min is
/// chosen from the requested mean; the cap truncates extreme draws.
EdgeId draw_degree(Rng& rng, double mean, double alpha, EdgeId cap) {
  const double x_min = mean * (alpha - 1.0) / alpha;
  const double u = rng.next_double();
  const double value = x_min / std::pow(1.0 - u, 1.0 / alpha);
  auto degree = static_cast<EdgeId>(std::llround(value));
  if (degree < 1) degree = 1;
  if (degree > cap) degree = cap;
  return degree;
}

/// Two-sided geometric offset with mean absolute value `scale`.
std::int64_t draw_offset(Rng& rng, double scale) {
  // Exponential with mean `scale`, rounded up to >= 1, random sign.
  const double u = rng.next_double();
  const double magnitude = -scale * std::log(1.0 - u);
  auto off = static_cast<std::int64_t>(std::llround(magnitude));
  if (off < 1) off = 1;
  return rng.next_bool(0.5) ? off : -off;
}

}  // namespace

Graph generate_webcrawl(const WebCrawlParams& params) {
  if (params.num_vertices == 0) return Graph{};
  if (params.degree_alpha <= 1.0) {
    throw std::invalid_argument("generate_webcrawl: degree_alpha must be > 1");
  }
  if (params.locality < 0.0 || params.locality > 1.0) {
    throw std::invalid_argument("generate_webcrawl: locality must be in [0,1]");
  }
  const VertexId n = params.num_vertices;
  Rng rng(params.seed);

  std::vector<EdgeId> offsets;
  offsets.reserve(static_cast<std::size_t>(n) + 1);
  offsets.push_back(0);
  std::vector<VertexId> targets;
  targets.reserve(static_cast<std::size_t>(n * params.avg_out_degree));

  // Reservoir of past edge targets for the preferential-attachment rule:
  // non-local edges point to the target of a uniformly random earlier edge.
  std::vector<VertexId> adj;
  const auto core_end =
      static_cast<VertexId>(params.dense_core_fraction * n);
  for (VertexId v = 0; v < n; ++v) {
    const double mean_degree =
        v < core_end ? params.avg_out_degree * params.dense_core_multiplier
                     : params.avg_out_degree;
    const EdgeId degree =
        draw_degree(rng, mean_degree, params.degree_alpha,
                    std::min<EdgeId>(params.max_out_degree, n - 1));
    adj.clear();

    // Copying model: with probability copy_prob, inherit a fraction of a
    // nearby predecessor's adjacency list. This creates the neighborhood
    // overlap (clustering) of real crawled web graphs.
    if (v > 0 && rng.next_bool(params.copy_prob)) {
      const auto back =
          1 + static_cast<VertexId>(rng.next_below(std::min<VertexId>(v, 8)));
      const VertexId ref = v - back;
      for (EdgeId e = offsets[ref]; e < offsets[ref + 1]; ++e) {
        if (adj.size() >= degree) break;
        if (rng.next_bool(params.copy_fraction) && targets[e] != v) {
          adj.push_back(targets[e]);
        }
      }
    }

    while (adj.size() < degree) {
      VertexId u = kInvalidVertex;
      if (rng.next_bool(params.locality)) {
        const std::int64_t off = draw_offset(rng, params.locality_scale);
        std::int64_t raw = static_cast<std::int64_t>(v) + off;
        // Reflect at the boundaries to avoid piling mass on vertex 0 / n-1.
        if (raw < 0) raw = -raw;
        if (raw >= static_cast<std::int64_t>(n)) {
          raw = 2 * static_cast<std::int64_t>(n) - 2 - raw;
        }
        if (raw < 0) raw = 0;  // tiny graphs: double reflection
        u = static_cast<VertexId>(raw);
      } else if (!targets.empty() && rng.next_bool(0.75)) {
        u = targets[rng.next_below(targets.size())];
      } else {
        u = static_cast<VertexId>(rng.next_below(n));
      }
      if (u != v) adj.push_back(u);
    }
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    targets.insert(targets.end(), adj.begin(), adj.end());
    offsets.push_back(targets.size());
  }
  return Graph(std::move(offsets), std::move(targets));
}

Graph generate_hostgraph(const HostGraphParams& params) {
  const VertexId n = params.num_vertices;
  if (n == 0) return Graph{};
  if (params.host_alpha <= 1.0 || params.degree_alpha <= 1.0) {
    throw std::invalid_argument("generate_hostgraph: alphas must be > 1");
  }
  Rng rng(params.seed);

  // Carve the id space into contiguous host blocks with Pareto sizes.
  std::vector<VertexId> host_begin;  // host h spans [host_begin[h], host_begin[h+1])
  host_begin.push_back(0);
  while (host_begin.back() < n) {
    const EdgeId size = draw_degree(rng, params.mean_host_size, params.host_alpha,
                                    std::max<EdgeId>(1, n / 4));
    host_begin.push_back(static_cast<VertexId>(
        std::min<std::uint64_t>(n, host_begin.back() + std::max<EdgeId>(1, size))));
  }
  const std::size_t num_hosts = host_begin.size() - 1;
  std::vector<VertexId> host_of(n);
  for (std::size_t h = 0; h < num_hosts; ++h) {
    for (VertexId v = host_begin[h]; v < host_begin[h + 1]; ++v) {
      host_of[v] = static_cast<VertexId>(h);
    }
  }

  std::vector<EdgeId> offsets;
  offsets.reserve(static_cast<std::size_t>(n) + 1);
  offsets.push_back(0);
  std::vector<VertexId> targets;
  targets.reserve(static_cast<std::size_t>(n * params.avg_out_degree));
  std::vector<VertexId> adj;

  auto host_span = [&](VertexId host) {
    return std::pair<VertexId, VertexId>{host_begin[host], host_begin[host + 1]};
  };

  for (VertexId v = 0; v < n; ++v) {
    const EdgeId degree =
        draw_degree(rng, params.avg_out_degree, params.degree_alpha,
                    std::min<EdgeId>(params.max_out_degree, n - 1));
    adj.clear();

    // Template copying from a nearby predecessor in the same host.
    if (v > 0 && host_of[v - 1] == host_of[v] && rng.next_bool(params.copy_prob)) {
      const auto back = 1 + static_cast<VertexId>(
          rng.next_below(std::min<VertexId>(v - host_begin[host_of[v]] + 1, 8)));
      const VertexId ref = v - std::min(back, v);
      if (host_of[ref] == host_of[v]) {
        for (EdgeId e = offsets[ref]; e < offsets[ref + 1]; ++e) {
          if (adj.size() >= degree) break;
          if (rng.next_bool(params.copy_fraction) && targets[e] != v) {
            adj.push_back(targets[e]);
          }
        }
      }
    }

    const auto [my_begin, my_end] = host_span(host_of[v]);
    while (adj.size() < degree) {
      VertexId u;
      if (rng.next_bool(params.intra_host) && my_end - my_begin > 1) {
        if (rng.next_bool(0.6)) {
          // Sibling link: geometric offset, reflected into the host block.
          std::int64_t raw =
              static_cast<std::int64_t>(v) + draw_offset(rng, params.intra_scale);
          if (raw < my_begin) raw = 2LL * my_begin - raw;
          if (raw >= my_end) raw = 2LL * (my_end - 1) - raw;
          if (raw < my_begin || raw >= my_end) {
            raw = my_begin + static_cast<std::int64_t>(
                                 rng.next_below(my_end - my_begin));
          }
          u = static_cast<VertexId>(raw);
        } else {
          u = my_begin + static_cast<VertexId>(rng.next_below(my_end - my_begin));
        }
      } else if (!targets.empty() && rng.next_bool(0.75)) {
        // Popular-host link via edge copying: reuse an earlier edge's
        // target's host, uniform page inside it.
        const VertexId popular = targets[rng.next_below(targets.size())];
        const auto [b, e] = host_span(host_of[popular]);
        u = b + static_cast<VertexId>(rng.next_below(e - b));
      } else {
        u = static_cast<VertexId>(rng.next_below(n));
      }
      if (u != v) adj.push_back(u);
    }
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    targets.insert(targets.end(), adj.begin(), adj.end());
    offsets.push_back(targets.size());
  }
  return Graph(std::move(offsets), std::move(targets));
}

PlantedGraph generate_planted_partition(const PlantedPartitionParams& params) {
  const VertexId n = params.num_vertices;
  const PartitionId c = params.num_communities;
  if (c == 0) {
    throw std::invalid_argument(
        "generate_planted_partition: need >= 1 community");
  }
  if (params.mixing < 0.0 || params.mixing > 1.0) {
    throw std::invalid_argument(
        "generate_planted_partition: mixing must be in [0,1]");
  }
  PlantedGraph result;
  result.num_communities = c;
  if (n == 0) return result;

  // Contiguous near-equal blocks, exactly the RangeTable split: the first
  // n % C communities get one extra vertex.
  const VertexId base = n / c;
  const PartitionId big = static_cast<PartitionId>(n % c);
  const VertexId split = static_cast<VertexId>(big) * (base + 1);
  std::vector<VertexId> begin(static_cast<std::size_t>(c) + 1, 0);
  for (PartitionId i = 0; i < c; ++i) {
    begin[i + 1] = begin[i] + (i < big ? base + 1 : base);
  }
  result.labels.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.labels[v] =
        v < split ? static_cast<PartitionId>(v / (base + 1))
                  : static_cast<PartitionId>(big + (v - split) / base);
  }

  Rng rng(params.seed);
  std::vector<EdgeId> offsets;
  offsets.reserve(static_cast<std::size_t>(n) + 1);
  offsets.push_back(0);
  std::vector<VertexId> targets;
  targets.reserve(static_cast<std::size_t>(n * params.avg_out_degree));
  std::vector<VertexId> adj;
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId home = result.labels[v];
    const VertexId home_begin = begin[home];
    const VertexId home_size = begin[home + 1] - home_begin;
    // Near-uniform degree (uniform in [avg/2, 3·avg/2]): the planted model
    // has no degree skew — that axis belongs to the webcrawl/R-MAT cells.
    auto degree = static_cast<EdgeId>(
        std::llround(params.avg_out_degree * (0.5 + rng.next_double())));
    if (degree < 1) degree = 1;
    if (degree > n - 1) degree = n - 1;
    adj.clear();
    while (n > 1 && adj.size() < degree) {
      VertexId u;
      if ((home_size > 1 && !rng.next_bool(params.mixing)) ||
          home_size == n) {
        // Intra-community: uniform in the home block, skipping v without
        // rejection sampling.
        u = home_begin + static_cast<VertexId>(rng.next_below(home_size - 1));
        if (u >= v) ++u;
      } else {
        // Inter-community: uniform over every vertex outside the home block.
        u = static_cast<VertexId>(rng.next_below(n - home_size));
        if (u >= home_begin) u += home_size;
      }
      adj.push_back(u);
    }
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    targets.insert(targets.end(), adj.begin(), adj.end());
    offsets.push_back(targets.size());
  }
  result.graph = Graph(std::move(offsets), std::move(targets));
  return result;
}

Graph generate_rmat(const RmatParams& params) {
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    throw std::invalid_argument("generate_rmat: probabilities must be >= 0 and sum <= 1");
  }
  const VertexId n = VertexId{1} << params.scale;
  Rng rng(params.seed);
  GraphBuilder builder(n);
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    VertexId row = 0, col = 0;
    for (unsigned level = 0; level < params.scale; ++level) {
      const double r = rng.next_double();
      row <<= 1;
      col <<= 1;
      if (r < params.a) {
        // top-left: nothing to add
      } else if (r < params.a + params.b) {
        col |= 1;
      } else if (r < params.a + params.b + params.c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row != col) builder.add_edge(row, col);
  }
  return builder.finish({.strip_duplicate_edges = true});
}

Graph generate_erdos_renyi(VertexId num_vertices, EdgeId num_edges,
                           std::uint64_t seed) {
  if (num_vertices < 2 && num_edges > 0) {
    throw std::invalid_argument("generate_erdos_renyi: need >= 2 vertices");
  }
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  for (EdgeId e = 0; e < num_edges; ++e) {
    const auto from = static_cast<VertexId>(rng.next_below(num_vertices));
    auto to = static_cast<VertexId>(rng.next_below(num_vertices - 1));
    if (to >= from) ++to;  // skip self-loop without rejection
    builder.add_edge(from, to);
  }
  return builder.finish();
}

Graph generate_ring_lattice(VertexId num_vertices, unsigned k) {
  GraphBuilder builder(num_vertices);
  if (num_vertices > 1) {
    const unsigned span = std::min<unsigned>(k, num_vertices - 1);
    for (VertexId v = 0; v < num_vertices; ++v) {
      for (unsigned i = 1; i <= span; ++i) {
        builder.add_edge(v, (v + i) % num_vertices);
      }
    }
  }
  return builder.finish();
}

Graph generate_grid(VertexId rows, VertexId cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.add_edge(id(r, c), id(r, c + 1));
        builder.add_edge(id(r, c + 1), id(r, c));
      }
      if (r + 1 < rows) {
        builder.add_edge(id(r, c), id(r + 1, c));
        builder.add_edge(id(r + 1, c), id(r, c));
      }
    }
  }
  return builder.finish();
}

}  // namespace spnl
