// Graph statistics used to characterize datasets in EXPERIMENTS.md and to
// validate that the synthetic analogues have the properties the paper's
// heuristics rely on (id locality, degree skew).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

struct DegreeStats {
  double mean = 0.0;
  EdgeId max = 0;
  EdgeId median = 0;
  EdgeId p99 = 0;
  /// Gini coefficient of the out-degree distribution (0 = uniform, ->1 = all
  /// mass on one vertex): the skew indicator behind the paper's δe spread.
  double gini = 0.0;
};

DegreeStats out_degree_stats(const Graph& graph);

struct LocalityStats {
  /// Mean |u - v| over all edges (u,v), normalized by |V|. Crawl-numbered
  /// web graphs sit well below random numbering's expected 1/3.
  double mean_normalized_gap = 0.0;
  /// Fraction of edges with |u - v| <= window (absolute id distance).
  double fraction_within_window = 0.0;
  VertexId window = 0;
};

/// `window` defaults to |V|/100 when 0.
LocalityStats locality_stats(const Graph& graph, VertexId window = 0);

/// Out-degree histogram: hist[d] = number of vertices with out-degree d,
/// capped at max_degree buckets (the final bucket aggregates the tail).
std::vector<VertexId> degree_histogram(const Graph& graph, EdgeId max_degree = 64);

/// One-line human-readable summary.
std::string describe(const Graph& graph, const std::string& name);

}  // namespace spnl
