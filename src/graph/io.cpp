#include "graph/io.hpp"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace spnl {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x53504e4c47523031ULL;  // "SPNLGR01"

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

bool parse_pair(const std::string& line, std::uint64_t& a, std::uint64_t& b) {
  const char* p = line.data();
  const char* end = p + line.size();
  auto skip_ws = [&] {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  };
  skip_ws();
  auto [p1, ec1] = std::from_chars(p, end, a);
  if (ec1 != std::errc()) return false;
  p = p1;
  skip_ws();
  auto [p2, ec2] = std::from_chars(p, end, b);
  if (ec2 != std::errc()) return false;
  p = p2;
  skip_ws();
  return p == end;
}

}  // namespace

Graph read_edge_list(const std::string& path, bool compact_ids) {
  std::ifstream in(path);
  if (!in) fail("read_edge_list: cannot open", path);
  GraphBuilder builder;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto map_id = [&](std::uint64_t raw) -> VertexId {
    if (!compact_ids) return static_cast<VertexId>(raw);
    auto [it, inserted] = remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::uint64_t a = 0, b = 0;
    if (!parse_pair(line, a, b)) fail("read_edge_list: malformed line in", path);
    builder.add_edge(map_id(a), map_id(b));
  }
  return builder.finish();
}

void write_edge_list(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("write_edge_list: cannot open", path);
  out << "# Directed edge list; V " << graph.num_vertices() << " E "
      << graph.num_edges() << "\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.out_neighbors(v)) out << v << ' ' << u << '\n';
  }
  if (!out) fail("write_edge_list: write error", path);
}

void write_adjacency_list(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("write_adjacency_list: cannot open", path);
  out << "# V " << graph.num_vertices() << " E " << graph.num_edges() << "\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out << v;
    for (VertexId u : graph.out_neighbors(v)) out << ' ' << u;
    out << '\n';
  }
  if (!out) fail("write_adjacency_list: write error", path);
}

void write_binary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("write_binary: cannot open", path);
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t m = graph.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>(graph.offsets().size() * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(graph.targets().data()),
            static_cast<std::streamsize>(graph.targets().size() * sizeof(VertexId)));
  if (!out) fail("write_binary: write error", path);
}

Graph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("read_binary: cannot open", path);
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || magic != kBinaryMagic) fail("read_binary: bad header in", path);
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(VertexId)));
  if (!in) fail("read_binary: truncated file", path);
  return Graph(std::move(offsets), std::move(targets));
}

void write_route_table(const std::vector<PartitionId>& route, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("write_route_table: cannot open", path);
  out << "# vertex partition\n";
  for (std::size_t v = 0; v < route.size(); ++v) out << v << ' ' << route[v] << '\n';
  if (!out) fail("write_route_table: write error", path);
}

std::vector<PartitionId> read_route_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("read_route_table: cannot open", path);
  std::vector<PartitionId> route;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::uint64_t v = 0, p = 0;
    if (!parse_pair(line, v, p)) fail("read_route_table: malformed line in", path);
    if (v >= route.size()) route.resize(v + 1, kUnassigned);
    route[v] = static_cast<PartitionId>(p);
  }
  return route;
}

}  // namespace spnl
