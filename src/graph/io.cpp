#include "graph/io.hpp"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>

#include "util/checked_io.hpp"

namespace spnl {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x53504e4c47523031ULL;  // "SPNLGR01"

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw IoError(what + ": " + path);
}

bool parse_pair(const std::string& line, std::uint64_t& a, std::uint64_t& b) {
  const char* p = line.data();
  const char* end = p + line.size();
  auto skip_ws = [&] {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  };
  skip_ws();
  auto [p1, ec1] = std::from_chars(p, end, a);
  if (ec1 != std::errc()) return false;
  p = p1;
  skip_ws();
  auto [p2, ec2] = std::from_chars(p, end, b);
  if (ec2 != std::errc()) return false;
  p = p2;
  skip_ws();
  return p == end;
}

}  // namespace

Graph read_edge_list(const std::string& path, bool compact_ids) {
  std::ifstream in(path);
  if (!in) fail("read_edge_list: cannot open", path);
  GraphBuilder builder;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto map_id = [&](std::uint64_t raw) -> VertexId {
    if (!compact_ids) return static_cast<VertexId>(raw);
    auto [it, inserted] = remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::uint64_t a = 0, b = 0;
    if (!parse_pair(line, a, b)) fail("read_edge_list: malformed line in", path);
    // Without compaction the raw id becomes the VertexId directly; ids at or
    // above kInvalidVertex would silently wrap into valid-looking vertices.
    if (!compact_ids && (a >= kInvalidVertex || b >= kInvalidVertex)) {
      fail("read_edge_list: vertex id overflows VertexId in", path);
    }
    builder.add_edge(map_id(a), map_id(b));
  }
  return builder.finish();
}

// The writers below go through FdWriter: every byte is checked (short-write
// and EINTR retried, persistent errors typed as IoError naming the path and
// errno) and close() is explicit so a full disk can't masquerade as success
// the way an unchecked ofstream destructor lets it.
void write_edge_list(const Graph& graph, const std::string& path) {
  FdWriter out(path);
  out.append("# Directed edge list; V ");
  out.append_u64(graph.num_vertices());
  out.append(" E ");
  out.append_u64(graph.num_edges());
  out.append_char('\n');
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.out_neighbors(v)) {
      out.append_u64(v);
      out.append_char(' ');
      out.append_u64(u);
      out.append_char('\n');
    }
  }
  out.close();
}

void write_adjacency_list(const Graph& graph, const std::string& path) {
  FdWriter out(path);
  out.append("# V ");
  out.append_u64(graph.num_vertices());
  out.append(" E ");
  out.append_u64(graph.num_edges());
  out.append_char('\n');
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out.append_u64(v);
    for (VertexId u : graph.out_neighbors(v)) {
      out.append_char(' ');
      out.append_u64(u);
    }
    out.append_char('\n');
  }
  out.close();
}

void write_binary(const Graph& graph, const std::string& path) {
  FdWriter out(path);
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t m = graph.num_edges();
  out.append(&magic, sizeof(magic));
  out.append(&n, sizeof(n));
  out.append(&m, sizeof(m));
  out.append(graph.offsets().data(), graph.offsets().size() * sizeof(EdgeId));
  out.append(graph.targets().data(), graph.targets().size() * sizeof(VertexId));
  out.close();
}

Graph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("read_binary: cannot open", path);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) fail("read_binary: truncated header in", path);
  if (magic != kBinaryMagic) fail("read_binary: bad magic in", path);
  // Validate the header against what is actually on disk BEFORE allocating:
  // a corrupt n/m would otherwise request terabytes or read past the end.
  if (n >= kInvalidVertex) fail("read_binary: vertex count overflows VertexId in", path);
  const std::uint64_t expected =
      3 * sizeof(std::uint64_t) + (n + 1) * sizeof(EdgeId) + m * sizeof(VertexId);
  if (file_size != expected) {
    fail("read_binary: file size does not match header (truncated or corrupt)", path);
  }
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(VertexId)));
  if (!in) fail("read_binary: truncated file", path);
  // Structural CSR invariants: offsets start at 0, never decrease, and cover
  // exactly m targets; every target names an existing vertex.
  if (offsets.front() != 0) fail("read_binary: offsets[0] != 0 in", path);
  for (std::size_t v = 1; v < offsets.size(); ++v) {
    if (offsets[v] < offsets[v - 1]) {
      fail("read_binary: non-monotone offset array in", path);
    }
  }
  if (offsets.back() != m) fail("read_binary: offsets.back() != edge count in", path);
  for (VertexId target : targets) {
    if (target >= n) fail("read_binary: edge target out of range in", path);
  }
  return Graph(std::move(offsets), std::move(targets));
}

void write_route_table(const std::vector<PartitionId>& route, const std::string& path) {
  FdWriter out(path);
  out.append("# vertex partition\n");
  for (std::size_t v = 0; v < route.size(); ++v) {
    out.append_u64(v);
    out.append_char(' ');
    out.append_u64(route[v]);
    out.append_char('\n');
  }
  out.close();
}

std::vector<PartitionId> read_route_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("read_route_table: cannot open", path);
  std::vector<PartitionId> route;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::uint64_t v = 0, p = 0;
    if (!parse_pair(line, v, p)) fail("read_route_table: malformed line in", path);
    if (v >= kInvalidVertex) fail("read_route_table: vertex id overflows VertexId in", path);
    if (p >= kUnassigned) fail("read_route_table: partition id overflows PartitionId in", path);
    if (v >= route.size()) route.resize(v + 1, kUnassigned);
    if (route[v] != kUnassigned) fail("read_route_table: duplicate vertex in", path);
    route[v] = static_cast<PartitionId>(p);
  }
  return route;
}

std::vector<PartitionId> read_route_table(const std::string& path, PartitionId k) {
  std::vector<PartitionId> route = read_route_table(path);
  try {
    validate_route(route, k);
  } catch (const IoError& e) {
    throw IoError(std::string(e.what()) + " (" + path + ")");
  }
  return route;
}

void validate_route(const std::vector<PartitionId>& route, PartitionId k,
                    VertexId num_vertices) {
  if (num_vertices > 0 && route.size() != num_vertices) {
    throw IoError("validate_route: route covers " + std::to_string(route.size()) +
                  " vertices, expected " + std::to_string(num_vertices));
  }
  for (std::size_t v = 0; v < route.size(); ++v) {
    if (route[v] == kUnassigned) {
      throw IoError("validate_route: vertex " + std::to_string(v) + " is unassigned");
    }
    if (route[v] >= k) {
      throw IoError("validate_route: vertex " + std::to_string(v) +
                    " routed to partition " + std::to_string(route[v]) +
                    " but k = " + std::to_string(k));
    }
  }
}

}  // namespace spnl
