#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace spnl {

DegreeStats out_degree_stats(const Graph& graph) {
  DegreeStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0) return stats;
  std::vector<EdgeId> degrees(n);
  for (VertexId v = 0; v < n; ++v) degrees[v] = graph.out_degree(v);
  std::sort(degrees.begin(), degrees.end());
  stats.mean = static_cast<double>(graph.num_edges()) / n;
  stats.max = degrees.back();
  stats.median = degrees[n / 2];
  stats.p99 = degrees[static_cast<std::size_t>(0.99 * (n - 1))];

  // Gini via the sorted formula: G = (2*sum(i*x_i) / (n*sum(x)) ) - (n+1)/n.
  long double weighted = 0.0L, total = 0.0L;
  for (VertexId i = 0; i < n; ++i) {
    weighted += static_cast<long double>(i + 1) * degrees[i];
    total += degrees[i];
  }
  if (total > 0) {
    stats.gini = static_cast<double>(2.0L * weighted / (n * total) -
                                     (static_cast<long double>(n) + 1) / n);
  }
  return stats;
}

LocalityStats locality_stats(const Graph& graph, VertexId window) {
  LocalityStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0 || graph.num_edges() == 0) return stats;
  if (window == 0) window = std::max<VertexId>(1, n / 100);
  stats.window = window;
  long double gap_sum = 0.0L;
  EdgeId within = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : graph.out_neighbors(v)) {
      const VertexId gap = u > v ? u - v : v - u;
      gap_sum += gap;
      if (gap <= window) ++within;
    }
  }
  stats.mean_normalized_gap =
      static_cast<double>(gap_sum / graph.num_edges()) / n;
  stats.fraction_within_window =
      static_cast<double>(within) / static_cast<double>(graph.num_edges());
  return stats;
}

std::vector<VertexId> degree_histogram(const Graph& graph, EdgeId max_degree) {
  std::vector<VertexId> hist(max_degree + 1, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ++hist[std::min(graph.out_degree(v), max_degree)];
  }
  return hist;
}

std::string describe(const Graph& graph, const std::string& name) {
  const DegreeStats degrees = out_degree_stats(graph);
  const LocalityStats locality = locality_stats(graph);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: |V|=%u |E|=%llu avg_d=%.1f max_d=%llu gini=%.2f "
                "gap=%.3f local@1%%=%.2f",
                name.c_str(), graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()), degrees.mean,
                static_cast<unsigned long long>(degrees.max), degrees.gini,
                locality.mean_normalized_gap, locality.fraction_within_window);
  return buf;
}

}  // namespace spnl
