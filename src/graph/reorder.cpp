#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace spnl {

Graph apply_permutation(const Graph& graph, const std::vector<VertexId>& new_id) {
  const VertexId n = graph.num_vertices();
  if (new_id.size() != n) throw std::invalid_argument("apply_permutation: size mismatch");
  std::vector<VertexId> old_of(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (new_id[v] >= n || old_of[new_id[v]] != kInvalidVertex) {
      throw std::invalid_argument("apply_permutation: not a permutation");
    }
    old_of[new_id[v]] = v;
  }
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId nv = 0; nv < n; ++nv) {
    offsets[nv + 1] = offsets[nv] + graph.out_degree(old_of[nv]);
  }
  std::vector<VertexId> targets(graph.num_edges());
  for (VertexId nv = 0; nv < n; ++nv) {
    EdgeId cursor = offsets[nv];
    for (VertexId u : graph.out_neighbors(old_of[nv])) targets[cursor++] = new_id[u];
  }
  return Graph(std::move(offsets), std::move(targets));
}

namespace {

template <typename Visit>
std::vector<VertexId> traversal_order(const Graph& graph, VertexId root, Visit visit) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return {};
  if (root >= n) throw std::invalid_argument("traversal: root out of range");
  std::vector<VertexId> new_id(n, kInvalidVertex);
  VertexId next = 0;
  visit(root, new_id, next);
  for (VertexId v = 0; v < n; ++v) {
    if (new_id[v] == kInvalidVertex) visit(v, new_id, next);
  }
  return new_id;
}

}  // namespace

std::vector<VertexId> bfs_order(const Graph& graph, VertexId root) {
  // BFS over the symmetrized view so that crawls reach in-link-only pages too.
  const Graph sym = graph.symmetrized();
  std::vector<VertexId> queue;
  queue.reserve(sym.num_vertices());
  return traversal_order(
      sym, root, [&](VertexId start, std::vector<VertexId>& new_id, VertexId& next) {
        queue.clear();
        queue.push_back(start);
        new_id[start] = next++;
        for (std::size_t head = 0; head < queue.size(); ++head) {
          for (VertexId u : sym.out_neighbors(queue[head])) {
            if (new_id[u] == kInvalidVertex) {
              new_id[u] = next++;
              queue.push_back(u);
            }
          }
        }
      });
}

std::vector<VertexId> dfs_order(const Graph& graph, VertexId root) {
  std::vector<VertexId> stack;
  return traversal_order(
      graph, root, [&](VertexId start, std::vector<VertexId>& new_id, VertexId& next) {
        stack.clear();
        stack.push_back(start);
        while (!stack.empty()) {
          const VertexId v = stack.back();
          stack.pop_back();
          if (new_id[v] != kInvalidVertex) continue;
          new_id[v] = next++;
          const auto out = graph.out_neighbors(v);
          for (auto it = out.rbegin(); it != out.rend(); ++it) {
            if (new_id[*it] == kInvalidVertex) stack.push_back(*it);
          }
        }
      });
}

std::vector<VertexId> random_order(VertexId num_vertices, std::uint64_t seed) {
  std::vector<VertexId> new_id(num_vertices);
  std::iota(new_id.begin(), new_id.end(), VertexId{0});
  Rng rng(seed);
  for (VertexId i = num_vertices; i > 1; --i) {
    std::swap(new_id[i - 1], new_id[rng.next_below(i)]);
  }
  return new_id;
}

std::vector<VertexId> degree_order(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return graph.out_degree(a) > graph.out_degree(b);
  });
  std::vector<VertexId> new_id(n);
  for (VertexId rank = 0; rank < n; ++rank) new_id[by_degree[rank]] = rank;
  return new_id;
}

Graph bfs_renumber(const Graph& graph, VertexId root) {
  return apply_permutation(graph, bfs_order(graph, root));
}

Graph random_renumber(const Graph& graph, std::uint64_t seed) {
  return apply_permutation(graph, random_order(graph.num_vertices(), seed));
}

}  // namespace spnl
