#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace spnl {

Graph apply_permutation(const Graph& graph, const std::vector<VertexId>& new_id) {
  const VertexId n = graph.num_vertices();
  if (new_id.size() != n) throw std::invalid_argument("apply_permutation: size mismatch");
  std::vector<VertexId> old_of(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (new_id[v] >= n || old_of[new_id[v]] != kInvalidVertex) {
      throw std::invalid_argument("apply_permutation: not a permutation");
    }
    old_of[new_id[v]] = v;
  }
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId nv = 0; nv < n; ++nv) {
    offsets[nv + 1] = offsets[nv] + graph.out_degree(old_of[nv]);
  }
  std::vector<VertexId> targets(graph.num_edges());
  for (VertexId nv = 0; nv < n; ++nv) {
    EdgeId cursor = offsets[nv];
    for (VertexId u : graph.out_neighbors(old_of[nv])) targets[cursor++] = new_id[u];
  }
  return Graph(std::move(offsets), std::move(targets));
}

namespace {

template <typename Visit>
std::vector<VertexId> traversal_order(const Graph& graph, VertexId root, Visit visit) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return {};
  if (root >= n) throw std::invalid_argument("traversal: root out of range");
  std::vector<VertexId> new_id(n, kInvalidVertex);
  VertexId next = 0;
  visit(root, new_id, next);
  for (VertexId v = 0; v < n; ++v) {
    if (new_id[v] == kInvalidVertex) visit(v, new_id, next);
  }
  return new_id;
}

}  // namespace

std::vector<VertexId> bfs_order(const Graph& graph, VertexId root) {
  // BFS over the symmetrized view so that crawls reach in-link-only pages too.
  const Graph sym = graph.symmetrized();
  std::vector<VertexId> queue;
  queue.reserve(sym.num_vertices());
  return traversal_order(
      sym, root, [&](VertexId start, std::vector<VertexId>& new_id, VertexId& next) {
        queue.clear();
        queue.push_back(start);
        new_id[start] = next++;
        for (std::size_t head = 0; head < queue.size(); ++head) {
          for (VertexId u : sym.out_neighbors(queue[head])) {
            if (new_id[u] == kInvalidVertex) {
              new_id[u] = next++;
              queue.push_back(u);
            }
          }
        }
      });
}

std::vector<VertexId> dfs_order(const Graph& graph, VertexId root) {
  std::vector<VertexId> stack;
  return traversal_order(
      graph, root, [&](VertexId start, std::vector<VertexId>& new_id, VertexId& next) {
        stack.clear();
        stack.push_back(start);
        while (!stack.empty()) {
          const VertexId v = stack.back();
          stack.pop_back();
          if (new_id[v] != kInvalidVertex) continue;
          new_id[v] = next++;
          const auto out = graph.out_neighbors(v);
          for (auto it = out.rbegin(); it != out.rend(); ++it) {
            if (new_id[*it] == kInvalidVertex) stack.push_back(*it);
          }
        }
      });
}

std::vector<VertexId> random_order(VertexId num_vertices, std::uint64_t seed) {
  std::vector<VertexId> new_id(num_vertices);
  std::iota(new_id.begin(), new_id.end(), VertexId{0});
  Rng rng(seed);
  for (VertexId i = num_vertices; i > 1; --i) {
    std::swap(new_id[i - 1], new_id[rng.next_below(i)]);
  }
  return new_id;
}

std::vector<VertexId> degree_order(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return graph.out_degree(a) > graph.out_degree(b);
  });
  std::vector<VertexId> new_id(n);
  for (VertexId rank = 0; rank < n; ++rank) new_id[by_degree[rank]] = rank;
  return new_id;
}

std::vector<VertexId> degree_ascending_order(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return graph.out_degree(a) < graph.out_degree(b);
  });
  std::vector<VertexId> new_id(n);
  for (VertexId rank = 0; rank < n; ++rank) new_id[by_degree[rank]] = rank;
  return new_id;
}

std::vector<VertexId> temporal_order(const Graph& graph, std::uint64_t seed) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return {};
  const Graph sym = graph.symmetrized();
  Rng rng(seed);
  const auto root = static_cast<VertexId>(rng.next_below(n));
  std::vector<VertexId> queue, frontier;
  queue.reserve(n);
  return traversal_order(
      sym, root, [&](VertexId start, std::vector<VertexId>& new_id, VertexId& next) {
        queue.clear();
        queue.push_back(start);
        new_id[start] = next++;
        for (std::size_t head = 0; head < queue.size(); ++head) {
          frontier.clear();
          for (VertexId u : sym.out_neighbors(queue[head])) {
            if (new_id[u] == kInvalidVertex) {
              new_id[u] = next++;  // claim now so duplicates are skipped
              frontier.push_back(u);
            }
          }
          // Shuffle this vertex's newly discovered neighbors: the re-crawl
          // visits links in an order uncorrelated with the stored lists.
          for (std::size_t i = frontier.size(); i > 1; --i) {
            std::swap(frontier[i - 1], frontier[rng.next_below(i)]);
          }
          // Re-stamp in shuffled order (claims above were provisional).
          VertexId stamp = next - static_cast<VertexId>(frontier.size());
          for (VertexId u : frontier) new_id[u] = stamp++;
          queue.insert(queue.end(), frontier.begin(), frontier.end());
        }
      });
}

std::vector<VertexId> community_interleaved_order(
    const std::vector<PartitionId>& labels, PartitionId num_communities) {
  const auto n = static_cast<VertexId>(labels.size());
  if (num_communities == 0 && n > 0) {
    throw std::invalid_argument(
        "community_interleaved_order: need >= 1 community");
  }
  std::vector<VertexId> group_size(num_communities, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (labels[v] >= num_communities) {
      throw std::invalid_argument(
          "community_interleaved_order: label out of range");
    }
    ++group_size[labels[v]];
  }
  // Rank within the group decides the round; rounds are emitted in order,
  // each visiting the communities 0..C-1 that still have members left. The
  // new id of the r-th member of community c is (number of members emitted
  // in rounds 0..r-1) + (members of communities < c that reach round r).
  // Computed by bucketing: counting sort by (round, community).
  std::vector<VertexId> rank_in_group(num_communities, 0);
  std::vector<std::pair<VertexId, VertexId>> keyed(n);  // (round, old id)
  for (VertexId v = 0; v < n; ++v) {
    keyed[v] = {rank_in_group[labels[v]]++, v};
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // stable sort by round keeps ids (and thus communities) ascending inside a
  // round, which is exactly round-robin c0, c1, ..., c0, c1, ...
  std::vector<VertexId> new_id(n);
  for (VertexId pos = 0; pos < n; ++pos) new_id[keyed[pos].second] = pos;
  return new_id;
}

const char* stream_order_name(StreamOrder order) {
  switch (order) {
    case StreamOrder::kId: return "id";
    case StreamOrder::kRandom: return "random";
    case StreamOrder::kDegree: return "degree";
    case StreamOrder::kDegreeAsc: return "degree-asc";
    case StreamOrder::kTemporal: return "temporal";
    case StreamOrder::kAdversarial: return "adversarial";
  }
  return "?";
}

StreamOrder stream_order_by_name(const std::string& name) {
  if (name == "id") return StreamOrder::kId;
  if (name == "random") return StreamOrder::kRandom;
  if (name == "degree") return StreamOrder::kDegree;
  if (name == "degree-asc") return StreamOrder::kDegreeAsc;
  if (name == "temporal") return StreamOrder::kTemporal;
  if (name == "adversarial") return StreamOrder::kAdversarial;
  throw std::invalid_argument("unknown stream order '" + name + "'");
}

std::vector<VertexId> make_stream_order(const Graph& graph, StreamOrder order,
                                        const std::vector<PartitionId>* labels,
                                        PartitionId num_communities,
                                        std::uint64_t seed) {
  const VertexId n = graph.num_vertices();
  switch (order) {
    case StreamOrder::kId: {
      std::vector<VertexId> identity(n);
      std::iota(identity.begin(), identity.end(), VertexId{0});
      return identity;
    }
    case StreamOrder::kRandom:
      return random_order(n, seed);
    case StreamOrder::kDegree:
      return degree_order(graph);
    case StreamOrder::kDegreeAsc:
      return degree_ascending_order(graph);
    case StreamOrder::kTemporal:
      return temporal_order(graph, seed);
    case StreamOrder::kAdversarial: {
      if (labels != nullptr) {
        return community_interleaved_order(*labels, num_communities);
      }
      // Unlabeled graphs: contiguous-block pseudo-communities (the
      // communities a crawl numbering actually embeds).
      if (num_communities == 0) num_communities = 1;
      std::vector<PartitionId> blocks(n);
      const VertexId base = std::max<VertexId>(1, n / num_communities);
      for (VertexId v = 0; v < n; ++v) {
        blocks[v] = static_cast<PartitionId>(
            std::min<VertexId>(v / base, num_communities - 1));
      }
      return community_interleaved_order(blocks, num_communities);
    }
  }
  throw std::invalid_argument("make_stream_order: unknown order");
}

Graph bfs_renumber(const Graph& graph, VertexId root) {
  return apply_permutation(graph, bfs_order(graph, root));
}

Graph random_renumber(const Graph& graph, std::uint64_t seed) {
  return apply_permutation(graph, random_order(graph.num_vertices(), seed));
}

}  // namespace spnl
