// Scaled synthetic analogues of the paper's eight evaluation graphs
// (Table II).
//
// The real datasets (stanford .. uk2007, up to 3.9B edges / 34GB) are not
// available in this offline environment, so each is replaced by a web-crawl
// model instance (generators.hpp) whose |V| is scaled down ~100-1000x while
// preserving average degree, degree skew (heavier-tailed for eu2015 and
// indo2004, whose paper δe ≈ 9-19), and BFS-crawl id locality (strong for
// indo2004/uk2002/web2001/uk2007 where the paper's SPNL reaches ECR 0.03-0.06,
// weaker for stanford/uk2005 where it stays at 0.18-0.32). See DESIGN.md
// "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace spnl {

struct DatasetSpec {
  std::string name;
  /// Generator parameters of the scaled analogue (scale = 1.0).
  WebCrawlParams params;
  /// The original graph's size, for the record.
  VertexId paper_num_vertices = 0;
  EdgeId paper_num_edges = 0;
};

/// The eight analogues, in the paper's Table II order.
const std::vector<DatasetSpec>& paper_datasets();

/// Lookup by name; throws std::out_of_range for unknown names.
const DatasetSpec& dataset_by_name(const std::string& name);

/// Generates the analogue. `scale` multiplies |V| (locality_scale follows
/// proportionally), letting benches run quick or full versions.
Graph load_dataset(const DatasetSpec& spec, double scale = 1.0);

}  // namespace spnl
