#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spnl {

namespace {

DatasetSpec make(std::string name, VertexId n, double avg_d, double locality,
                 double locality_scale, double alpha, EdgeId max_degree,
                 std::uint64_t seed, VertexId paper_v, EdgeId paper_e) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.params.num_vertices = n;
  spec.params.avg_out_degree = avg_d;
  spec.params.locality = locality;
  spec.params.locality_scale = locality_scale;
  spec.params.degree_alpha = alpha;
  spec.params.max_out_degree = max_degree;
  spec.params.copy_prob = 0.7;
  spec.params.copy_fraction = 0.6;
  spec.params.seed = seed;
  spec.paper_num_vertices = paper_v;
  spec.paper_num_edges = paper_e;
  return spec;
}

}  // namespace

const std::vector<DatasetSpec>& paper_datasets() {
  // locality / alpha / max-degree tuned per graph: the paper's SPNL ECR is
  // ~0.2-0.3 on stanford/uk2005 (weaker crawl locality) and 0.03-0.06 on
  // indo2004/uk2002/web2001/uk2007 (strong locality); eu2015/indo2004 show
  // the heaviest edge skew (paper δe up to 19, driven by extreme hubs).
  static const std::vector<DatasetSpec> specs = [] {
    std::vector<DatasetSpec> s = {
      make("stanford", 20'000, 11.0, 0.72, 70.0, 2.2, 1 << 12, 11, 685'230, 7'605'339),
      make("uk2005", 10'000, 30.0, 0.62, 80.0, 2.2, 1 << 12, 12, 100'000, 3'050'615),
      make("eu2015", 60'000, 20.0, 0.86, 80.0, 1.6, 1 << 15, 13, 6'650'532, 171'736'545),
      make("indo2004", 64'000, 22.0, 0.96, 60.0, 1.6, 1 << 14, 14, 7'414'866, 195'418'438),
      make("uk2002", 100'000, 16.0, 0.95, 70.0, 2.2, 1 << 12, 15, 18'520'486, 298'113'762),
      make("web2001", 160'000, 9.0, 0.95, 80.0, 2.2, 1 << 12, 16, 118'142'155, 1'019'903'190),
      make("sk2005", 120'000, 38.0, 0.92, 90.0, 1.9, 1 << 13, 17, 50'636'154, 1'949'412'601),
      make("uk2007", 200'000, 36.0, 0.97, 80.0, 1.8, 1 << 13, 18, 108'563'230, 3'929'837'236),
    };
    // The two ultra-skewed graphs carry a contiguous dense core whose edge
    // mass lands in few partitions under vertex balance (paper δe 8.6-18.6).
    for (auto& spec : s) {
      if (spec.name == "eu2015") {
        spec.params.dense_core_fraction = 0.02;
        spec.params.dense_core_multiplier = 30.0;
      } else if (spec.name == "indo2004") {
        spec.params.dense_core_fraction = 0.03;
        spec.params.dense_core_multiplier = 12.0;
      }
    }
    return s;
  }();
  return specs;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const auto& spec : paper_datasets()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("dataset_by_name: unknown dataset " + name);
}

Graph load_dataset(const DatasetSpec& spec, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("load_dataset: scale must be > 0");
  WebCrawlParams params = spec.params;
  params.num_vertices = std::max<VertexId>(
      16, static_cast<VertexId>(std::llround(params.num_vertices * scale)));
  params.locality_scale = std::max(8.0, params.locality_scale * std::sqrt(scale));
  return generate_webcrawl(params);
}

}  // namespace spnl
