// Vertex renumbering.
//
// The paper's key locality claim (Sec. IV-C) is that crawl-order numbering
// places neighbors at nearby ids. These utilities let the benches construct
// and destroy that property: BFS renumbering restores crawl-like locality,
// random renumbering destroys it (ablation), degree ordering mimics
// popularity-sorted datasets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// Applies `new_id[v] = position of v in the new numbering` to the graph:
/// vertex v becomes new_id[v] and adjacency lists are rewritten. new_id must
/// be a permutation of 0..n-1.
Graph apply_permutation(const Graph& graph, const std::vector<VertexId>& new_id);

/// BFS order over the symmetrized graph from `root`, visiting unreached
/// components in id order afterwards. Returns new_id (old -> new).
std::vector<VertexId> bfs_order(const Graph& graph, VertexId root = 0);

/// DFS (iterative, out-edges only) variant of the above.
std::vector<VertexId> dfs_order(const Graph& graph, VertexId root = 0);

/// Uniformly random permutation.
std::vector<VertexId> random_order(VertexId num_vertices, std::uint64_t seed);

/// Decreasing out-degree order (ties by old id).
std::vector<VertexId> degree_order(const Graph& graph);

/// Increasing out-degree order (ties by old id): the streaming-greedy worst
/// case where every early decision is made on a near-empty neighborhood.
std::vector<VertexId> degree_ascending_order(const Graph& graph);

/// BFS-temporal "re-crawl" order: BFS over the symmetrized graph from a
/// seeded root, visiting each frontier's neighbors in seeded-shuffled order
/// (a fresh crawl of the same graph — BFS-shaped locality, but decorrelated
/// from the original numbering). Unreached components follow in id order.
std::vector<VertexId> temporal_order(const Graph& graph, std::uint64_t seed);

/// Worst-case community-interleaved order: round-robin across the label
/// groups (members in id order), so consecutive new ids almost never share a
/// community. Designed to defeat both of SPNL's local-knowledge structures
/// at once: every contiguous logical-table range straddles all communities,
/// and the sliding Γ window only ever holds a community-interleaved slice.
/// labels[v] must be < num_communities; groups may be empty.
std::vector<VertexId> community_interleaved_order(
    const std::vector<PartitionId>& labels, PartitionId num_communities);

/// The scenario-matrix stream-order axis (docs/scenarios.md). Orders are
/// applied by renumbering (apply_permutation) and streaming the renumbered
/// graph in id order, so every partitioner keeps its ascending-id stream
/// contract while the crawl numbering is preserved or destroyed.
enum class StreamOrder {
  kId,           ///< original numbering (crawl order — SPNL's home turf)
  kRandom,       ///< uniform random permutation
  kDegree,       ///< decreasing out-degree
  kDegreeAsc,    ///< increasing out-degree
  kTemporal,     ///< seeded BFS re-crawl
  kAdversarial,  ///< community-interleaved (see above)
};

const char* stream_order_name(StreamOrder order);
/// Throws std::invalid_argument for unknown names
/// (id|random|degree|degree-asc|temporal|adversarial).
StreamOrder stream_order_by_name(const std::string& name);

/// new_id permutation for `order`. kAdversarial interleaves the given labels
/// when present; without labels it synthesizes contiguous-block
/// pseudo-communities (num_communities blocks — for crawl-numbered graphs
/// those ARE the communities, so block interleaving is the same attack).
/// `seed` feeds kRandom and kTemporal; kId returns the identity.
std::vector<VertexId> make_stream_order(const Graph& graph, StreamOrder order,
                                        const std::vector<PartitionId>* labels,
                                        PartitionId num_communities,
                                        std::uint64_t seed);

/// Convenience: graph renumbered by BFS / randomly.
Graph bfs_renumber(const Graph& graph, VertexId root = 0);
Graph random_renumber(const Graph& graph, std::uint64_t seed);

}  // namespace spnl
