// Vertex renumbering.
//
// The paper's key locality claim (Sec. IV-C) is that crawl-order numbering
// places neighbors at nearby ids. These utilities let the benches construct
// and destroy that property: BFS renumbering restores crawl-like locality,
// random renumbering destroys it (ablation), degree ordering mimics
// popularity-sorted datasets.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// Applies `new_id[v] = position of v in the new numbering` to the graph:
/// vertex v becomes new_id[v] and adjacency lists are rewritten. new_id must
/// be a permutation of 0..n-1.
Graph apply_permutation(const Graph& graph, const std::vector<VertexId>& new_id);

/// BFS order over the symmetrized graph from `root`, visiting unreached
/// components in id order afterwards. Returns new_id (old -> new).
std::vector<VertexId> bfs_order(const Graph& graph, VertexId root = 0);

/// DFS (iterative, out-edges only) variant of the above.
std::vector<VertexId> dfs_order(const Graph& graph, VertexId root = 0);

/// Uniformly random permutation.
std::vector<VertexId> random_order(VertexId num_vertices, std::uint64_t seed);

/// Decreasing out-degree order (ties by old id).
std::vector<VertexId> degree_order(const Graph& graph);

/// Convenience: graph renumbered by BFS / randomly.
Graph bfs_renumber(const Graph& graph, VertexId root = 0);
Graph random_renumber(const Graph& graph, std::uint64_t seed);

}  // namespace spnl
