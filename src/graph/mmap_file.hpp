// Read-only memory-mapped file, the substrate of the zero-copy readers.
//
// The text streams in mmap_stream.hpp and the binary reader in
// stream_binary.hpp walk pointers over the mapping instead of copying lines
// through an ifstream buffer; MADV_SEQUENTIAL tells the kernel to read ahead
// aggressively and drop pages behind the cursor, which is what lets the
// binary reader stream graphs larger than RAM.
#pragma once

#include <cstddef>
#include <string>

namespace spnl {

/// RAII mapping of a whole file, read-only and private. Move-only. An empty
/// file maps to {nullptr, 0} (a valid, immediately-exhausted range) — mmap
/// itself rejects zero-length mappings. Throws IoError on open/stat/map
/// failure.
class MmapFile {
 public:
  MmapFile() = default;
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const char* begin() const { return data_; }
  const char* end() const { return data_ + size_; }
  const std::string& path() const { return path_; }

  /// Storage-fault check: fstat the path and throw a typed IoError if the
  /// file on disk is now SHORTER than the mapping (pages past the new EOF
  /// would SIGBUS on access). Readers call this at pass boundaries (reset)
  /// so an already-truncated file fails up front with a precise message; the
  /// SigbusGuard around the decode loops catches truncation that lands
  /// mid-pass. Growth is fine — the mapping just doesn't see the new tail.
  void throw_if_shrunk() const;

  /// Pages the kernel currently counts against us are file-backed and clean
  /// (read-only mapping): they can be dropped and refaulted at any time, so
  /// the mapping contributes nothing to the partitioner's *owned* footprint
  /// (the governor's MC budget). RSS sampling still sees resident pages.
  static constexpr std::size_t owned_bytes() { return 0; }

 private:
  void unmap() noexcept;

  std::string path_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace spnl
