// Synthetic graph generators.
//
// The paper evaluates on eight public web/social graphs (Table II) that are
// not available offline (up to 34GB). These generators produce scaled-down
// analogues with the two properties the partitioning heuristics actually
// exploit:
//
//  * Topology locality: real web graphs are crawled by BFS, so the vertex
//    numbering places neighbors at nearby ids (paper Sec. IV-C, footnote 2).
//    The web-crawl model draws most edge targets from a two-sided geometric
//    offset around the source id.
//  * Skewed degrees: out-degrees follow a bounded Pareto law, and non-local
//    targets use an edge-copying rule, which yields power-law in-degrees —
//    reproducing the heavy δe skew of Table III (eu2015: δe ≈ 18).
//
// All generators are fully deterministic given their seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// Parameters of the BFS-crawl-like web graph model.
struct WebCrawlParams {
  VertexId num_vertices = 0;
  /// Target mean out-degree (mean of the bounded Pareto degree draw).
  double avg_out_degree = 8.0;
  /// Probability that an edge target is "local" (geometric offset around the
  /// source id) rather than drawn by edge-copying / uniform choice.
  double locality = 0.85;
  /// Mean absolute id offset of local edge targets.
  double locality_scale = 64.0;
  /// Pareto tail index alpha of the out-degree distribution; smaller values
  /// give heavier tails (more skew). Must be > 1.
  double degree_alpha = 2.0;
  /// Hard cap on out-degree.
  EdgeId max_out_degree = 1 << 14;
  /// Probability that a vertex copies part of a nearby predecessor's
  /// adjacency list (the web copying model: consecutively crawled pages
  /// share large link-list fractions — the neighborhood overlap streaming
  /// greedy heuristics feed on).
  double copy_prob = 0.6;
  /// Fraction of the reference list copied when copying happens.
  double copy_fraction = 0.5;
  /// Dense core: the first dense_core_fraction·|V| ids get their mean
  /// out-degree multiplied by dense_core_multiplier. Models the ultra-dense
  /// host clusters of graphs like eu2015/indo2004, whose edge mass piles
  /// into whichever partition receives the core — the source of the paper's
  /// δe ≈ 9-19 under vertex balance.
  double dense_core_fraction = 0.0;
  double dense_core_multiplier = 1.0;
  std::uint64_t seed = 1;
};

/// BFS-crawl-like directed web graph (see file comment). Adjacency lists are
/// sorted and de-duplicated; no self-loops.
Graph generate_webcrawl(const WebCrawlParams& params);

/// Parameters of the hierarchical host-block web model.
struct HostGraphParams {
  VertexId num_vertices = 0;
  /// Mean pages per host; host sizes are Pareto(alpha=host_alpha).
  double mean_host_size = 200.0;
  double host_alpha = 1.8;
  double avg_out_degree = 10.0;
  /// Probability an edge stays inside the source's host.
  double intra_host = 0.85;
  /// Within-host target draw: geometric offset of this mean around the
  /// source (pages link to template siblings), else uniform in the host.
  double intra_scale = 20.0;
  /// Inter-host edges pick a host by popularity (copying) and a uniform
  /// page inside it.
  double copy_prob = 0.6;
  double copy_fraction = 0.6;
  double degree_alpha = 2.0;
  EdgeId max_out_degree = 1 << 13;
  std::uint64_t seed = 1;
};

/// Two-level web model: hosts are contiguous id blocks (crawls visit a host
/// nearly exhaustively before moving on), pages link mostly within their
/// host, and cross-host links concentrate on popular hosts. Compared to
/// generate_webcrawl this reproduces the *cluster-width* structure of real
/// crawls — the regime where the paper's SPNL gains over SPN grow with
/// graph size (see bench_scaletrend).
Graph generate_hostgraph(const HostGraphParams& params);

/// Parameters of the planted-partition (symmetric stochastic block) model.
struct PlantedPartitionParams {
  VertexId num_vertices = 0;
  /// Number of planted communities; ids are carved into contiguous blocks of
  /// near-equal size (the first n % C blocks get one extra vertex), matching
  /// the RangeTable split so that with C == K the id numbering is the
  /// friendliest possible input for SPNL's logical table — the adversarial
  /// stream orders in graph/reorder.hpp then destroy exactly that property.
  PartitionId num_communities = 8;
  /// Target mean out-degree.
  double avg_out_degree = 16.0;
  /// Mixing parameter μ: expected fraction of edges whose target lies
  /// OUTSIDE the source's community. μ = 0 gives disconnected cliques-ish
  /// blocks; μ = (C-1)/C erases the planted structure entirely.
  double mixing = 0.1;
  std::uint64_t seed = 1;
};

/// A generated graph together with its planted ground-truth labels, so
/// benches can score recovery (partition/metrics.hpp: recovery_rate).
struct PlantedGraph {
  Graph graph;
  /// labels[v] = community of v, in [0, num_communities).
  std::vector<PartitionId> labels;
  PartitionId num_communities = 0;
};

/// Planted-partition graph (Condon & Karp; the streaming analysis is
/// Tsourakakis's "Streaming Graph Partitioning in the Planted Partition
/// Model"): each vertex draws ~avg_out_degree targets, each one uniform
/// inside its own community with probability 1-μ and uniform over the other
/// communities with probability μ. Adjacency lists are sorted and
/// de-duplicated; no self-loops. Fully deterministic given the seed.
PlantedGraph generate_planted_partition(const PlantedPartitionParams& params);

/// Parameters of the R-MAT recursive matrix model (Chakrabarti et al.).
struct RmatParams {
  /// |V| = 2^scale.
  unsigned scale = 14;
  /// Number of directed edges to sample (duplicates/self-loops are dropped,
  /// so the final count is slightly lower).
  EdgeId num_edges = 1 << 18;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1-a-b-c
  std::uint64_t seed = 1;
};

/// R-MAT graph: community structure + power-law degrees, but NO id locality
/// (used by the ablation benches to show SPNL's locality dependence).
Graph generate_rmat(const RmatParams& params);

/// Erdos–Renyi G(n, m): m uniform random directed edges without self-loops.
Graph generate_erdos_renyi(VertexId num_vertices, EdgeId num_edges,
                           std::uint64_t seed);

/// Directed ring lattice: v links to v+1..v+k (mod n). Perfect locality;
/// the easiest possible case for range pre-assignment.
Graph generate_ring_lattice(VertexId num_vertices, unsigned k);

/// 2D grid (rows x cols), 4-neighborhood, directed both ways, row-major ids.
Graph generate_grid(VertexId rows, VertexId cols);

}  // namespace spnl
