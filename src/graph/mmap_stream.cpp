#include "graph/mmap_stream.hpp"

#include <algorithm>
#include <charconv>
#include <csetjmp>
#include <cstdio>
#include <stdexcept>
#include <string_view>

#include "graph/io.hpp"
#include "util/sigbus_guard.hpp"

namespace spnl {

namespace {

// Jump target for a SigbusGuard trip: the mapped text file shrank under the
// reader and a parse touched a page past the new EOF.
[[noreturn]] void truncated_under_reader(const std::string& path,
                                         const SigbusGuard& guard) {
  throw IoError(path + ": mapping faulted (SIGBUS) at offset " +
                std::to_string(guard.fault_offset()) +
                " — file truncated while streamed");
}

// Returns the next line [p, '\n') as a view and advances p past the
// newline. The view aliases the mapping — valid until the file is unmapped.
inline std::string_view take_line(const char*& p, const char* end) {
  const char* begin = p;
  while (p < end && *p != '\n') ++p;
  std::string_view line(begin, static_cast<std::size_t>(p - begin));
  if (p < end) ++p;  // consume '\n'
  return line;
}

// Same token grammar as the buffered readers' parse_ids: whitespace-separated
// unsigned ints, ' '/'\t'/'\r' separators, false on any malformed token.
bool parse_ids_view(std::string_view line, std::vector<VertexId>& out) {
  out.clear();
  const char* p = line.data();
  const char* end = p + line.size();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    VertexId value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) return false;
    out.push_back(value);
    p = next;
  }
  return true;
}

inline bool is_blank(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

// "# V <n> E <m>" header comment (same pattern FileAdjacencyStream honors).
bool parse_header(std::string_view line, VertexId& n_out, EdgeId& m_out) {
  unsigned long long n = 0, m = 0;
  // Comments are rare; a bounded copy for sscanf keeps the grammar identical
  // to the buffered reader's.
  std::string copy(line);
  if (std::sscanf(copy.c_str(), "# V %llu E %llu", &n, &m) != 2) return false;
  n_out = static_cast<VertexId>(n);
  m_out = m;
  return true;
}

}  // namespace

MmapAdjacencyStream::MmapAdjacencyStream(const std::string& path,
                                         StreamHardeningOptions hardening)
    : map_(path), quarantine_(std::move(hardening)) {
  // Header or pre-scan, with the same quarantine rule as the buffered
  // reader: malformed lines are skipped silently here — next() is the pass
  // that counts and logs them, so counts stay in step with the stream.
  const char* p = map_.begin();
  const char* end = map_.end();
  std::vector<VertexId> ids;
  bool have_header = false;
  // SIGBUS-safe pre-scan: truncation under the mapping becomes a typed
  // IoError. All scan state lives in pre-declared locals (siglongjmp skips
  // destructors of objects constructed after the setjmp).
  SigbusGuard guard(map_.data(), map_.size());
  if (sigsetjmp(guard.env(), 0) != 0) truncated_under_reader(map_.path(), guard);
  while (p < end) {
    std::string_view line = take_line(p, end);
    if (!line.empty() && line[0] == '#') {
      if (parse_header(line, num_vertices_, num_edges_)) {
        have_header = true;
        break;
      }
      continue;
    }
    if (!parse_ids_view(line, ids) || ids.empty()) {
      if (is_blank(line)) continue;
      if (quarantine_.enabled()) continue;
      throw std::runtime_error("MmapAdjacencyStream: malformed line in " +
                               map_.path() + ": " + std::string(line));
    }
    num_vertices_ = std::max(num_vertices_, ids[0] + 1);
    num_edges_ += ids.size() - 1;
  }
  (void)have_header;
  reset();
}

void MmapAdjacencyStream::reset() {
  map_.throw_if_shrunk();
  cursor_ = map_.begin();
  quarantine_.reset_count();
}

std::optional<VertexRecord> MmapAdjacencyStream::next() {
  const char* end = map_.end();
  SigbusGuard guard(map_.data(), map_.size());
  if (sigsetjmp(guard.env(), 0) != 0) truncated_under_reader(map_.path(), guard);
  while (cursor_ < end) {
    std::string_view line = take_line(cursor_, end);
    if (line.empty() || line[0] == '#') continue;
    if (is_blank(line)) continue;
    if (!parse_ids_view(line, buffer_) || buffer_.empty()) {
      if (quarantine_.enabled()) {
        quarantine_.record(std::string(line),
                           "MmapAdjacencyStream: " + map_.path());
        continue;
      }
      throw std::runtime_error("MmapAdjacencyStream: malformed line in " +
                               map_.path());
    }
    VertexRecord record;
    record.id = buffer_[0];
    record.out =
        std::span<const VertexId>(buffer_.data() + 1, buffer_.size() - 1);
    return record;
  }
  return std::nullopt;
}

MmapEdgeListStream::MmapEdgeListStream(const std::string& path,
                                       StreamHardeningOptions hardening)
    : map_(path), quarantine_(std::move(hardening)) {
  const char* p = map_.begin();
  const char* end = map_.end();
  std::vector<VertexId> ids;
  VertexId last_from = 0;
  bool first = true;
  SigbusGuard guard(map_.data(), map_.size());
  if (sigsetjmp(guard.env(), 0) != 0) truncated_under_reader(map_.path(), guard);
  while (p < end) {
    std::string_view line = take_line(p, end);
    if (line.empty() || line[0] == '#') continue;
    if (is_blank(line)) continue;
    if (!parse_ids_view(line, ids) || ids.size() != 2) {
      // Quarantine mode: skip silently in the pre-scan; read_pair() is the
      // pass that counts and logs, keeping counts in step with the stream.
      if (quarantine_.enabled()) continue;
      throw std::runtime_error("MmapEdgeListStream: malformed line in " +
                               map_.path());
    }
    if (!first && ids[0] < last_from) {
      throw std::runtime_error(
          "MmapEdgeListStream: edges not grouped by source in " + map_.path());
    }
    first = false;
    last_from = ids[0];
    num_vertices_ = std::max({num_vertices_, ids[0] + 1, ids[1] + 1});
    ++num_edges_;
  }
  reset();
}

void MmapEdgeListStream::reset() {
  map_.throw_if_shrunk();
  pair_cursor_ = map_.begin();
  cursor_ = 0;
  have_pending_ = false;
  quarantine_.reset_count();
}

bool MmapEdgeListStream::read_pair() {
  const char* end = map_.end();
  std::vector<VertexId> ids;
  SigbusGuard guard(map_.data(), map_.size());
  if (sigsetjmp(guard.env(), 0) != 0) truncated_under_reader(map_.path(), guard);
  while (pair_cursor_ < end) {
    std::string_view line = take_line(pair_cursor_, end);
    if (line.empty() || line[0] == '#') continue;
    if (is_blank(line)) continue;
    if (!parse_ids_view(line, ids) || ids.size() != 2) {
      if (quarantine_.enabled()) {
        quarantine_.record(std::string(line),
                           "MmapEdgeListStream: " + map_.path());
        continue;
      }
      throw std::runtime_error("MmapEdgeListStream: malformed line in " +
                               map_.path());
    }
    pending_from_ = ids[0];
    pending_to_ = ids[1];
    return true;
  }
  return false;
}

std::optional<VertexRecord> MmapEdgeListStream::next() {
  if (cursor_ >= num_vertices_) return std::nullopt;
  if (!have_pending_) have_pending_ = read_pair();

  buffer_.clear();
  const VertexId v = cursor_++;
  while (have_pending_ && pending_from_ == v) {
    buffer_.push_back(pending_to_);
    have_pending_ = read_pair();
  }
  return VertexRecord{v, std::span<const VertexId>(buffer_)};
}

}  // namespace spnl
