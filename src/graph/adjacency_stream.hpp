// The streaming model of the paper (Sec. II / IV): the graph arrives as a
// one-pass stream of adjacency lists (vertex id + out-neighbors), vertices
// consecutively numbered and — in the default order — streamed by increasing
// id. Partitioners consume this interface; they never see the whole graph.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

class FdWriter;

/// Hardening knobs for the file-backed streams. By default a malformed
/// mid-stream record aborts the run (the seed behavior); with
/// max_bad_records > 0 up to that many malformed lines are skipped, counted
/// and (optionally) appended verbatim to quarantine_log — one more malformed
/// line past the bound is a hard error.
struct StreamHardeningOptions {
  std::uint64_t max_bad_records = 0;
  std::string quarantine_log;
};

/// Bounded quarantine shared by the file streams: skip + count + log, hard
/// error past the bound.
///
/// Storage-fault contract: a quarantine log that cannot be OPENED is a typed
/// startup error (operator asked for a log they cannot have), but a log
/// WRITE that fails mid-stream must not abort a multi-hour partitioning run
/// over a side-channel file — the bad line is dropped from the log, the drop
/// is counted, and the run's summary surfaces log_drops() so the loss is
/// visible instead of silent.
class BadRecordQuarantine {
 public:
  BadRecordQuarantine() = default;
  /// Throws IoError when a quarantine log is configured but not writable —
  /// discovered at startup, not at the first (silently lost) bad record.
  explicit BadRecordQuarantine(StreamHardeningOptions options);
  ~BadRecordQuarantine();

  bool enabled() const { return options_.max_bad_records > 0; }

  /// Records one malformed line (appends it to the quarantine log when
  /// configured; a failed log write counts toward log_drops() instead of
  /// throwing). Throws std::runtime_error when the count exceeds
  /// max_bad_records; `context` prefixes the message.
  void record(const std::string& line, const std::string& context);

  std::uint64_t count() const { return count_; }
  /// Quarantined lines that could NOT be appended to the log because the
  /// log write failed (disk full, I/O error). Cumulative across passes.
  std::uint64_t log_drops() const { return log_drops_; }
  /// Called from the owning stream's reset() so each pass recounts. Also
  /// rewinds the quarantine log: without this, re-streaming passes (two-pass
  /// wrappers, resume) appended every quarantined line again, so a log
  /// consumer saw each bad record once per pass instead of once. A reopen
  /// failure here is counted in log_drops(), not thrown — reset runs at pass
  /// boundaries deep inside partitioning loops.
  void reset_count();

 private:
  void ensure_log_writable();

  StreamHardeningOptions options_;
  std::uint64_t count_ = 0;
  std::uint64_t log_drops_ = 0;
  std::unique_ptr<FdWriter> log_;
};

/// One streamed record: a vertex and its out-adjacency list. The span points
/// into stream-owned storage and is invalidated by the next call to next().
struct VertexRecord {
  VertexId id = kInvalidVertex;
  std::span<const VertexId> out;
};

/// Owning variant used when records must outlive the stream (parallel queue).
struct OwnedVertexRecord {
  VertexId id = kInvalidVertex;
  std::vector<VertexId> out;

  static OwnedVertexRecord from(const VertexRecord& r) {
    return {r.id, std::vector<VertexId>(r.out.begin(), r.out.end())};
  }
};

/// One-pass (rewindable for re-streaming) adjacency-list source.
class AdjacencyStream {
 public:
  virtual ~AdjacencyStream() = default;

  /// Next record, or nullopt at end of stream.
  virtual std::optional<VertexRecord> next() = 0;

  /// Rewind to the beginning (used by the re-streaming wrappers).
  virtual void reset() = 0;

  /// Total vertex count. Streaming partitioners need |V| up front to size
  /// capacities — the paper assumes it is known (graphs ship with metadata).
  virtual VertexId num_vertices() const = 0;

  /// Total edge count (for edge-balanced capacities).
  virtual EdgeId num_edges() const = 0;

  /// Heap bytes the stream itself owns (line/decode buffers). Charged to the
  /// resource governor's footprint alongside the partitioner's structures.
  /// Mmap-backed streams do NOT count their mapping here: the pages are
  /// file-backed and clean, so the kernel can reclaim them under pressure —
  /// they are visible to RSS sampling but are not owned memory.
  virtual std::size_t memory_footprint_bytes() const { return 0; }

  /// Malformed records quarantined so far in the current pass (file-backed
  /// streams running with hardening; 0 for everything else).
  virtual std::uint64_t bad_records() const { return 0; }

  /// Quarantined lines lost because the quarantine LOG itself could not be
  /// written (storage fault on the side channel). Cumulative; 0 for streams
  /// without a quarantine log.
  virtual std::uint64_t quarantine_log_drops() const { return 0; }
};

/// Streams an in-memory CSR graph in increasing vertex-id order.
class InMemoryStream final : public AdjacencyStream {
 public:
  /// The graph must outlive the stream.
  explicit InMemoryStream(const Graph& graph) : graph_(&graph) {}

  std::optional<VertexRecord> next() override;
  void reset() override { cursor_ = 0; }
  VertexId num_vertices() const override { return graph_->num_vertices(); }
  EdgeId num_edges() const override { return graph_->num_edges(); }

 private:
  const Graph* graph_;
  VertexId cursor_ = 0;
};

/// Streams an in-memory graph in a caller-given vertex order (ablations:
/// random order destroys the id-locality SPNL's window exploits).
class OrderedStream final : public AdjacencyStream {
 public:
  /// order must be a permutation of 0..n-1; validated on construction.
  OrderedStream(const Graph& graph, std::vector<VertexId> order);

  std::optional<VertexRecord> next() override;
  void reset() override { cursor_ = 0; }
  VertexId num_vertices() const override { return graph_->num_vertices(); }
  EdgeId num_edges() const override { return graph_->num_edges(); }

 private:
  const Graph* graph_;
  std::vector<VertexId> order_;
  std::size_t cursor_ = 0;
};

/// Streams a text adjacency-list file: one line per vertex,
/// "<id> <out1> <out2> ...". Lines beginning with '#' are comments. A header
/// comment "# V <n> E <m>" is honored; otherwise the file is pre-scanned once
/// for counts (the partitioning pass itself stays single-scan, matching the
/// paper's PT definition which starts at the first adjacency-list load).
class FileAdjacencyStream final : public AdjacencyStream {
 public:
  explicit FileAdjacencyStream(const std::string& path,
                               StreamHardeningOptions hardening = {});

  std::optional<VertexRecord> next() override;
  void reset() override;
  VertexId num_vertices() const override { return num_vertices_; }
  EdgeId num_edges() const override { return num_edges_; }
  std::size_t memory_footprint_bytes() const override {
    return line_.capacity() + buffer_.capacity() * sizeof(VertexId);
  }

  /// Malformed lines quarantined so far in the current pass.
  std::uint64_t bad_records() const override { return quarantine_.count(); }
  std::uint64_t quarantine_log_drops() const override {
    return quarantine_.log_drops();
  }

 private:
  std::string path_;
  std::ifstream in_;
  std::string line_;
  std::vector<VertexId> buffer_;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  BadRecordQuarantine quarantine_;
};

/// Streams a SNAP-style edge-list file ("<from> <to>" per line, '#'
/// comments) that is sorted (grouped) by source — the format the public
/// datasets actually ship in. Consecutive lines with the same source are
/// assembled into one adjacency record; vertices with no out-edges are
/// emitted as empty records so every id 0..max appears exactly once.
/// Requires the grouping to be non-decreasing in the source id (validated).
class EdgeListAdjacencyStream final : public AdjacencyStream {
 public:
  explicit EdgeListAdjacencyStream(const std::string& path,
                                   StreamHardeningOptions hardening = {});

  std::optional<VertexRecord> next() override;
  void reset() override;
  VertexId num_vertices() const override { return num_vertices_; }
  EdgeId num_edges() const override { return num_edges_; }
  std::size_t memory_footprint_bytes() const override {
    return line_.capacity() + buffer_.capacity() * sizeof(VertexId);
  }

  /// Malformed lines quarantined so far in the current pass.
  std::uint64_t bad_records() const override { return quarantine_.count(); }
  std::uint64_t quarantine_log_drops() const override {
    return quarantine_.log_drops();
  }

 private:
  /// Reads the next "from to" pair into pending_; false at EOF.
  bool read_pair();

  std::string path_;
  std::ifstream in_;
  std::string line_;
  std::vector<VertexId> buffer_;
  VertexId cursor_ = 0;  // next vertex id to emit
  bool have_pending_ = false;
  VertexId pending_from_ = 0;
  VertexId pending_to_ = 0;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  BadRecordQuarantine quarantine_;
};

/// Drains a stream into a CSR graph (testing / examples). Requires records
/// for every vertex id exactly once.
Graph materialize(AdjacencyStream& stream);

}  // namespace spnl
