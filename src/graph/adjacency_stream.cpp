#include "graph/adjacency_stream.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "graph/io.hpp"
#include "util/checked_io.hpp"

namespace spnl {

std::optional<VertexRecord> InMemoryStream::next() {
  if (cursor_ >= graph_->num_vertices()) return std::nullopt;
  VertexRecord record{cursor_, graph_->out_neighbors(cursor_)};
  ++cursor_;
  return record;
}

OrderedStream::OrderedStream(const Graph& graph, std::vector<VertexId> order)
    : graph_(&graph), order_(std::move(order)) {
  if (order_.size() != graph.num_vertices()) {
    throw std::invalid_argument("OrderedStream: order size != |V|");
  }
  std::vector<bool> seen(order_.size(), false);
  for (VertexId v : order_) {
    if (v >= order_.size() || seen[v]) {
      throw std::invalid_argument("OrderedStream: order is not a permutation");
    }
    seen[v] = true;
  }
}

std::optional<VertexRecord> OrderedStream::next() {
  if (cursor_ >= order_.size()) return std::nullopt;
  const VertexId v = order_[cursor_++];
  return VertexRecord{v, graph_->out_neighbors(v)};
}

namespace {

// Parses whitespace-separated unsigned ints from `line` into `out`.
// Returns false on any malformed token.
bool parse_ids(const std::string& line, std::vector<VertexId>& out) {
  out.clear();
  const char* p = line.data();
  const char* end = p + line.size();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    VertexId value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) return false;
    out.push_back(value);
    p = next;
  }
  return true;
}

}  // namespace

BadRecordQuarantine::BadRecordQuarantine(StreamHardeningOptions options)
    : options_(std::move(options)) {
  ensure_log_writable();
}

BadRecordQuarantine::~BadRecordQuarantine() = default;

void BadRecordQuarantine::ensure_log_writable() {
  // Fail fast at construction: an unwritable quarantine log used to be
  // discovered only at the first bad record — and then silently ignored,
  // losing the very records the operator asked to keep. Opening (and
  // truncating) eagerly turns a bad --quarantine-log path into a typed
  // startup error instead of silent data loss mid-stream.
  if (!enabled() || options_.quarantine_log.empty() || log_) return;
  try {
    log_ = std::make_unique<FdWriter>(options_.quarantine_log);
  } catch (const IoError&) {
    throw IoError("quarantine log not writable: " + options_.quarantine_log);
  }
}

void BadRecordQuarantine::reset_count() {
  // Pass boundary: rewind the log along with the counter. Truncate-and-reopen
  // (rather than append with a marker) keeps the log a verbatim copy of the
  // *latest* pass's bad lines — every pass sees the same input, so earlier
  // passes carry no extra information, only duplicates. A reopen failure is a
  // storage fault on the side channel, not the stream: count it as a drop and
  // keep partitioning (record() then counts every subsequent loss too).
  if (count_ > 0 && log_) {
    try {
      log_.reset();
      log_ = std::make_unique<FdWriter>(options_.quarantine_log);
    } catch (const IoError&) {
      ++log_drops_;
    }
  }
  count_ = 0;
}

void BadRecordQuarantine::record(const std::string& line,
                                 const std::string& context) {
  ++count_;
  if (log_) {
    try {
      log_->append(line);
      log_->append_char('\n');
      log_->flush();  // bad records are rare; the log must survive a crash
    } catch (const IoError&) {
      // The LOG failed, not the stream: dropping this line from the log is
      // recoverable, aborting a multi-hour run over a side-channel file is
      // not. FdWriter::flush discarded the buffered bytes, so later records
      // retry cleanly if the disk recovers. The drop count is surfaced in
      // the run summary.
      ++log_drops_;
    }
  } else if (!options_.quarantine_log.empty()) {
    // Log was configured but is gone (reopen failed at a pass boundary).
    ++log_drops_;
  }
  if (count_ > options_.max_bad_records) {
    throw std::runtime_error(context + ": too many malformed records (" +
                             std::to_string(count_) + " > bound of " +
                             std::to_string(options_.max_bad_records) + ")");
  }
}

FileAdjacencyStream::FileAdjacencyStream(const std::string& path,
                                         StreamHardeningOptions hardening)
    : path_(path), quarantine_(std::move(hardening)) {
  std::ifstream scan(path_);
  if (!scan) throw std::runtime_error("FileAdjacencyStream: cannot open " + path_);

  // Look for a "# V <n> E <m>" header on the first comment lines; otherwise
  // pre-scan for counts. In quarantine mode malformed lines are skipped
  // silently here — the streaming pass is the one that counts and logs them,
  // so the counts stay consistent with what next() will emit.
  bool have_header = false;
  std::string line;
  std::vector<VertexId> ids;
  auto malformed = [&](const std::string& bad) {
    if (quarantine_.enabled()) return;  // skip; next() quarantines it
    throw std::runtime_error("FileAdjacencyStream: malformed line in " + path_ +
                             ": " + bad);
  };
  while (std::getline(scan, line)) {
    if (!line.empty() && line[0] == '#') {
      unsigned long long n = 0, m = 0;
      if (std::sscanf(line.c_str(), "# V %llu E %llu", &n, &m) == 2) {
        num_vertices_ = static_cast<VertexId>(n);
        num_edges_ = m;
        have_header = true;
        break;
      }
      continue;
    }
    if (!parse_ids(line, ids) || ids.empty()) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      malformed(line);
      continue;
    }
    num_vertices_ = std::max(num_vertices_, ids[0] + 1);
    num_edges_ += ids.size() - 1;
  }
  if (!have_header) {
    // finish the pre-scan
    while (std::getline(scan, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (!parse_ids(line, ids) || ids.empty()) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        malformed(line);
        continue;
      }
      num_vertices_ = std::max(num_vertices_, ids[0] + 1);
      num_edges_ += ids.size() - 1;
    }
  }
  reset();
}

void FileAdjacencyStream::reset() {
  in_ = std::ifstream(path_);
  if (!in_) throw std::runtime_error("FileAdjacencyStream: cannot reopen " + path_);
  quarantine_.reset_count();
}

std::optional<VertexRecord> FileAdjacencyStream::next() {
  while (std::getline(in_, line_)) {
    if (line_.empty() || line_[0] == '#') continue;
    if (line_.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!parse_ids(line_, buffer_) || buffer_.empty()) {
      if (quarantine_.enabled()) {
        quarantine_.record(line_, "FileAdjacencyStream: " + path_);
        continue;
      }
      throw std::runtime_error("FileAdjacencyStream: malformed line in " + path_);
    }
    VertexRecord record;
    record.id = buffer_[0];
    record.out = std::span<const VertexId>(buffer_.data() + 1, buffer_.size() - 1);
    return record;
  }
  return std::nullopt;
}

EdgeListAdjacencyStream::EdgeListAdjacencyStream(const std::string& path,
                                                 StreamHardeningOptions hardening)
    : path_(path), quarantine_(std::move(hardening)) {
  std::ifstream scan(path_);
  if (!scan) throw std::runtime_error("EdgeListAdjacencyStream: cannot open " + path_);
  std::string line;
  std::vector<VertexId> ids;
  VertexId last_from = 0;
  bool first = true;
  while (std::getline(scan, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!parse_ids(line, ids) || ids.size() != 2) {
      // Quarantine mode: skip silently in the pre-scan; read_pair() is the
      // pass that counts and logs, keeping counts in step with the stream.
      if (quarantine_.enabled()) continue;
      throw std::runtime_error("EdgeListAdjacencyStream: malformed line in " + path_);
    }
    if (!first && ids[0] < last_from) {
      throw std::runtime_error(
          "EdgeListAdjacencyStream: edges not grouped by source in " + path_);
    }
    first = false;
    last_from = ids[0];
    num_vertices_ = std::max({num_vertices_, ids[0] + 1, ids[1] + 1});
    ++num_edges_;
  }
  reset();
}

void EdgeListAdjacencyStream::reset() {
  in_ = std::ifstream(path_);
  if (!in_) throw std::runtime_error("EdgeListAdjacencyStream: cannot reopen " + path_);
  cursor_ = 0;
  have_pending_ = false;
  quarantine_.reset_count();
}

bool EdgeListAdjacencyStream::read_pair() {
  std::vector<VertexId> ids;
  while (std::getline(in_, line_)) {
    if (line_.empty() || line_[0] == '#') continue;
    if (line_.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!parse_ids(line_, ids) || ids.size() != 2) {
      if (quarantine_.enabled()) {
        quarantine_.record(line_, "EdgeListAdjacencyStream: " + path_);
        continue;
      }
      throw std::runtime_error("EdgeListAdjacencyStream: malformed line in " + path_);
    }
    pending_from_ = ids[0];
    pending_to_ = ids[1];
    return true;
  }
  return false;
}

std::optional<VertexRecord> EdgeListAdjacencyStream::next() {
  if (cursor_ >= num_vertices_) return std::nullopt;
  if (!have_pending_) have_pending_ = read_pair();

  buffer_.clear();
  const VertexId v = cursor_++;
  while (have_pending_ && pending_from_ == v) {
    buffer_.push_back(pending_to_);
    have_pending_ = read_pair();
  }
  return VertexRecord{v, std::span<const VertexId>(buffer_)};
}

Graph materialize(AdjacencyStream& stream) {
  GraphBuilder builder(stream.num_vertices());
  std::vector<bool> seen(stream.num_vertices(), false);
  while (auto record = stream.next()) {
    if (record->id >= seen.size() || seen[record->id]) {
      throw std::runtime_error("materialize: duplicate or out-of-range vertex record");
    }
    seen[record->id] = true;
    builder.add_vertex(record->id, record->out);
  }
  return builder.finish();
}

}  // namespace spnl
