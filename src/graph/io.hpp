// Graph and route-table I/O.
//
// Formats:
//  * SNAP edge list: "<from> <to>" per line, '#' comments (the format of the
//    public datasets the paper uses).
//  * Adjacency list text: "<id> <out...>" per line with a "# V <n> E <m>"
//    header — the streaming input format (see FileAdjacencyStream).
//  * Binary CSR: magic + counts + raw arrays, for fast reloads.
//  * Route table: "<vertex> <partition>" per line — the partitioner output
//    the paper's PT measurement ends at.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// Loads a SNAP-style edge list. Vertex ids are used as-is (assumed dense);
/// set `compact_ids` to renumber the encountered ids densely by first
/// appearance instead.
Graph read_edge_list(const std::string& path, bool compact_ids = false);

void write_edge_list(const Graph& graph, const std::string& path);

/// Writes the adjacency-list text format with a "# V <n> E <m>" header.
void write_adjacency_list(const Graph& graph, const std::string& path);

/// Binary CSR round-trip.
void write_binary(const Graph& graph, const std::string& path);
Graph read_binary(const std::string& path);

/// Vertex -> partition assignments.
void write_route_table(const std::vector<PartitionId>& route, const std::string& path);
std::vector<PartitionId> read_route_table(const std::string& path);

}  // namespace spnl
