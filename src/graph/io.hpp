// Graph and route-table I/O.
//
// Formats:
//  * SNAP edge list: "<from> <to>" per line, '#' comments (the format of the
//    public datasets the paper uses).
//  * Adjacency list text: "<id> <out...>" per line with a "# V <n> E <m>"
//    header — the streaming input format (see FileAdjacencyStream).
//  * Binary CSR: magic + counts + raw arrays, for fast reloads.
//  * Route table: "<vertex> <partition>" per line — the partitioner output
//    the paper's PT measurement ends at.
//
// Robustness: every reader validates structure before constructing objects —
// corrupt or truncated input throws IoError instead of yielding graphs whose
// traversal reads out of bounds far from the load site. read_binary checks
// the header against the real file size, offset monotonicity,
// offsets.back()==m and target ranges; read_route_table rejects duplicate
// vertices and ids that overflow PartitionId, and validate_route() gives
// tools/tests one hole-and-range check for complete route tables.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

/// Typed error for malformed, truncated or structurally invalid input files.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Loads a SNAP-style edge list. Vertex ids are used as-is (assumed dense);
/// set `compact_ids` to renumber the encountered ids densely by first
/// appearance instead.
Graph read_edge_list(const std::string& path, bool compact_ids = false);

void write_edge_list(const Graph& graph, const std::string& path);

/// Writes the adjacency-list text format with a "# V <n> E <m>" header.
void write_adjacency_list(const Graph& graph, const std::string& path);

/// Binary CSR round-trip.
void write_binary(const Graph& graph, const std::string& path);
Graph read_binary(const std::string& path);

/// Vertex -> partition assignments. Reading rejects malformed lines,
/// duplicate vertices and partition ids that overflow PartitionId; unseen
/// vertices below the max id are left kUnassigned (validate_route detects
/// such holes when completeness is required).
void write_route_table(const std::vector<PartitionId>& route, const std::string& path);
std::vector<PartitionId> read_route_table(const std::string& path);

/// As above, then validates the table is a complete assignment into k
/// partitions (no holes, every id < k).
std::vector<PartitionId> read_route_table(const std::string& path, PartitionId k);

/// Throws IoError unless `route` is a complete assignment: size == n (when
/// n > 0), no kUnassigned holes, every partition id < k.
void validate_route(const std::vector<PartitionId>& route, PartitionId k,
                    VertexId num_vertices = 0);

}  // namespace spnl
