#include "server/protocol.hpp"

#include <cstring>

namespace spnl {

namespace {

struct FrameHeader {
  std::uint16_t magic;
  std::uint8_t type;
  std::uint8_t reserved;
  std::uint32_t payload_len;
};
static_assert(sizeof(FrameHeader) == 8);

}  // namespace

bool is_known_msg_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MsgType::kHello) &&
         type <= static_cast<std::uint8_t>(MsgType::kBye);
}

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloAck: return "HelloAck";
    case MsgType::kOpen: return "Open";
    case MsgType::kOpenAck: return "OpenAck";
    case MsgType::kBusy: return "Busy";
    case MsgType::kResume: return "Resume";
    case MsgType::kResumeAck: return "ResumeAck";
    case MsgType::kRecords: return "Records";
    case MsgType::kRecordsAck: return "RecordsAck";
    case MsgType::kFinish: return "Finish";
    case MsgType::kRouteChunk: return "RouteChunk";
    case MsgType::kRouteDone: return "RouteDone";
    case MsgType::kError: return "Error";
    case MsgType::kBye: return "Bye";
  }
  return "?";
}

const char* wire_error_name(WireError code) {
  switch (code) {
    case WireError::kProtocol: return "protocol";
    case WireError::kUnknownSession: return "unknown-session";
    case WireError::kQuarantined: return "quarantined";
    case WireError::kSequenceGap: return "sequence-gap";
    case WireError::kDraining: return "draining";
    case WireError::kBadConfig: return "bad-config";
    case WireError::kInternal: return "internal";
  }
  return "?";
}

void WireSessionConfig::save(StateWriter& out) const {
  out.put_string(algo);
  out.put_u64(num_vertices);
  out.put_u64(num_edges);
  out.put_u32(num_partitions);
  out.put_f64(lambda);
  out.put_u32(num_shards);
  out.put_u32(balance);
  out.put_f64(slack);
}

WireSessionConfig WireSessionConfig::restore(StateReader& in) {
  WireSessionConfig config;
  config.algo = in.get_string();
  config.num_vertices = in.get_u64();
  config.num_edges = in.get_u64();
  config.num_partitions = in.get_u32();
  config.lambda = in.get_f64();
  config.num_shards = in.get_u32();
  config.balance = static_cast<std::uint8_t>(in.get_u32());
  config.slack = in.get_f64();
  return config;
}

void write_frame(Socket& sock, MsgType type, const StateWriter& payload,
                 int timeout_ms) {
  const auto& bytes = payload.bytes();
  if (bytes.size() > kMaxFrameBytes) {
    throw ProtocolError("frame payload exceeds kMaxFrameBytes (" +
                        std::to_string(bytes.size()) + ")");
  }
  FrameHeader header{kFrameMagic, static_cast<std::uint8_t>(type), 0,
                     static_cast<std::uint32_t>(bytes.size())};
  // One buffered write per frame: header and payload land in a single
  // send() in the common case, so a reader never observes a header-only
  // prefix from a healthy peer (torn frames come only from real faults).
  std::vector<std::uint8_t> wire(sizeof(header) + bytes.size());
  std::memcpy(wire.data(), &header, sizeof(header));
  if (!bytes.empty()) {
    std::memcpy(wire.data() + sizeof(header), bytes.data(), bytes.size());
  }
  sock.write_all(wire.data(), wire.size(), timeout_ms);
}

void write_frame(Socket& sock, MsgType type, int timeout_ms) {
  write_frame(sock, type, StateWriter{}, timeout_ms);
}

std::optional<Frame> read_frame(Socket& sock, int timeout_ms, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  FrameHeader header{};
  const IoStatus status = sock.read_exact(&header, sizeof(header), timeout_ms);
  if (status == IoStatus::kEof) return std::nullopt;
  if (status == IoStatus::kTimeout) {
    if (timed_out != nullptr) *timed_out = true;
    return std::nullopt;
  }
  if (header.magic != kFrameMagic) {
    throw ProtocolError("frame: bad magic 0x" + std::to_string(header.magic));
  }
  if (!is_known_msg_type(header.type)) {
    throw ProtocolError("frame: unknown message type " +
                        std::to_string(header.type));
  }
  if (header.payload_len > kMaxFrameBytes) {
    throw ProtocolError("frame: payload length " +
                        std::to_string(header.payload_len) + " exceeds cap");
  }
  std::vector<std::uint8_t> payload(header.payload_len);
  if (header.payload_len > 0) {
    // A peer that sent a header must follow through with the payload; EOF or
    // stall here is a torn frame (read_exact throws on mid-message EOF).
    if (sock.read_exact(payload.data(), payload.size(), timeout_ms) !=
        IoStatus::kOk) {
      throw NetError("frame: timed out reading payload (torn frame)");
    }
  }
  return Frame{static_cast<MsgType>(header.type), StateReader(std::move(payload))};
}

void send_error(Socket& sock, WireError code, const std::string& message,
                int timeout_ms) {
  StateWriter out;
  out.put_u32(static_cast<std::uint32_t>(code));
  out.put_string(message);
  write_frame(sock, MsgType::kError, out, timeout_ms);
}

void send_busy(Socket& sock, std::uint32_t retry_after_ms,
               const std::string& reason, int timeout_ms) {
  StateWriter out;
  out.put_u32(retry_after_ms);
  out.put_string(reason);
  write_frame(sock, MsgType::kBusy, out, timeout_ms);
}

}  // namespace spnl
