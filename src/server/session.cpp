#include "server/session.hpp"

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "partition/fennel.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {

namespace {

constexpr const char* kSessionTag = "spnl-session";

PartitionConfig to_partition_config(const WireSessionConfig& config) {
  PartitionConfig out;
  out.num_partitions = config.num_partitions;
  out.balance = config.balance == 1 ? BalanceMode::kEdge : BalanceMode::kVertex;
  out.slack = config.slack;
  return out;
}

}  // namespace

std::unique_ptr<StreamingPartitioner> make_session_partitioner(
    const WireSessionConfig& config) {
  if (config.num_vertices == 0) {
    throw ProtocolError("open: num_vertices must be > 0", WireError::kBadConfig);
  }
  if (config.num_partitions == 0) {
    throw ProtocolError("open: num_partitions must be > 0", WireError::kBadConfig);
  }
  if (config.balance > 1) {
    throw ProtocolError("open: balance must be 0 (vertex) or 1 (edge)",
                        WireError::kBadConfig);
  }
  const auto n = static_cast<VertexId>(config.num_vertices);
  const auto m = static_cast<EdgeId>(config.num_edges);
  const PartitionConfig pc = to_partition_config(config);
  if (config.algo == "spnl") {
    return std::make_unique<SpnlPartitioner>(
        n, m, pc, SpnlOptions{.lambda = config.lambda, .num_shards = config.num_shards});
  }
  if (config.algo == "spn") {
    return std::make_unique<SpnPartitioner>(
        n, m, pc, SpnOptions{.lambda = config.lambda, .num_shards = config.num_shards});
  }
  if (config.algo == "ldg") return std::make_unique<LdgPartitioner>(n, m, pc);
  if (config.algo == "fennel") return std::make_unique<FennelPartitioner>(n, m, pc);
  if (config.algo == "hash") return std::make_unique<HashPartitioner>(n, m, pc);
  if (config.algo == "range") return std::make_unique<RangePartitioner>(n, m, pc);
  throw ProtocolError("open: unknown algo '" + config.algo + "'",
                      WireError::kBadConfig);
}

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kActive: return "active";
    case SessionState::kDetached: return "detached";
    case SessionState::kFinished: return "finished";
    case SessionState::kQuarantined: return "quarantined";
  }
  return "?";
}

Session::Session(std::string token, std::uint64_t id,
                 const WireSessionConfig& config)
    : token_(std::move(token)),
      id_(id),
      config_(config),
      partitioner_(make_session_partitioner(config)),
      last_activity_(std::chrono::steady_clock::now()) {}

void Session::save(StateWriter& out) const {
  std::lock_guard lock(mutex_);
  out.put_string(kSessionTag);
  out.put_string(token_);
  out.put_u64(id_);
  out.put_u32(state_ == SessionState::kFinished ? 1 : 0);
  config_.save(out);
  out.put_u64(received_);
  partitioner_->save_state(out);
}

std::unique_ptr<Session> Session::restore(StateReader& in) {
  in.expect_string(kSessionTag, "session tag");
  auto session = std::unique_ptr<Session>(new Session());
  session->token_ = in.get_string();
  session->id_ = in.get_u64();
  const bool finished = in.get_u32() != 0;
  session->config_ = WireSessionConfig::restore(in);
  session->received_ = in.get_u64();
  session->partitioner_ = make_session_partitioner(session->config_);
  session->partitioner_->restore_state(in);
  session->state_ = finished ? SessionState::kFinished : SessionState::kDetached;
  session->last_activity_ = std::chrono::steady_clock::now();
  return session;
}

bool Session::attach() {
  std::lock_guard lock(mutex_);
  if (attached_ || state_ == SessionState::kQuarantined) return false;
  attached_ = true;
  if (state_ == SessionState::kDetached) state_ = SessionState::kActive;
  last_activity_ = std::chrono::steady_clock::now();
  return true;
}

void Session::detach() {
  std::lock_guard lock(mutex_);
  attached_ = false;
  if (state_ == SessionState::kActive) state_ = SessionState::kDetached;
  last_activity_ = std::chrono::steady_clock::now();
}

std::uint64_t Session::feed(std::uint64_t first_seq,
                            std::span<const VertexId> ids,
                            std::span<const std::uint32_t> degrees,
                            std::span<const VertexId> neighbors) {
  std::lock_guard lock(mutex_);
  if (state_ == SessionState::kQuarantined) {
    throw ProtocolError("session quarantined: " + quarantine_reason_,
                        WireError::kQuarantined);
  }
  if (state_ == SessionState::kFinished) {
    throw ProtocolError("records after finish", WireError::kProtocol);
  }
  if (first_seq > received_) {
    state_ = SessionState::kQuarantined;
    quarantine_reason_ = "sequence gap (batch starts at " +
                         std::to_string(first_seq) + ", committed " +
                         std::to_string(received_) + ")";
    throw ProtocolError(quarantine_reason_, WireError::kSequenceGap);
  }
  std::size_t neighbor_offset = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint32_t degree = degrees[i];
    if (neighbor_offset + degree > neighbors.size()) {
      state_ = SessionState::kQuarantined;
      quarantine_reason_ = "records frame degree overruns neighbor block";
      throw ProtocolError(quarantine_reason_, WireError::kProtocol);
    }
    const std::uint64_t seq = first_seq + i;
    if (seq >= received_) {  // idempotent retransmit: skip committed prefix
      partitioner_->place(ids[i],
                          neighbors.subspan(neighbor_offset, degree));
      received_ = seq + 1;
    }
    neighbor_offset += degree;
  }
  last_activity_ = std::chrono::steady_clock::now();
  return received_;
}

const std::vector<PartitionId>& Session::finish(std::uint64_t total_records) {
  std::lock_guard lock(mutex_);
  if (state_ == SessionState::kQuarantined) {
    throw ProtocolError("session quarantined: " + quarantine_reason_,
                        WireError::kQuarantined);
  }
  if (received_ != total_records) {
    state_ = SessionState::kQuarantined;
    quarantine_reason_ = "finish with " + std::to_string(received_) + " of " +
                         std::to_string(total_records) + " records committed";
    throw ProtocolError(quarantine_reason_, WireError::kSequenceGap);
  }
  state_ = SessionState::kFinished;
  last_activity_ = std::chrono::steady_clock::now();
  return partitioner_->route();
}

void Session::quarantine(const std::string& reason) {
  std::lock_guard lock(mutex_);
  if (state_ == SessionState::kQuarantined) return;
  state_ = SessionState::kQuarantined;
  quarantine_reason_ = reason;
  last_activity_ = std::chrono::steady_clock::now();
}

SessionState Session::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::uint64_t Session::records_received() const {
  std::lock_guard lock(mutex_);
  return received_;
}

std::size_t Session::memory_footprint_bytes() const {
  std::lock_guard lock(mutex_);
  return partitioner_->memory_footprint_bytes();
}

double Session::idle_seconds() const {
  std::lock_guard lock(mutex_);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       last_activity_)
      .count();
}

void Session::touch() {
  std::lock_guard lock(mutex_);
  last_activity_ = std::chrono::steady_clock::now();
}

}  // namespace spnl
