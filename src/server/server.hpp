// spnl_server core: a long-lived daemon multiplexing many concurrent
// partitioning sessions over the framed protocol (server/protocol.hpp).
//
// Architecture — one accept loop, one handler thread per connection, one
// reaper thread, a token-keyed SessionRegistry shared by all of them:
//
//   accept loop ──spawns──> handler(conn) ──drives──> Session (via registry)
//        │                        │
//        │ polls drain flag       │ per-frame read timeout (slow-loris cap)
//        v                        v
//     reaper ── idle/quarantined session collection
//
// Robustness properties (exercised by tests/test_server_soak.cpp):
//  * Fault isolation: a malformed frame, sequence gap, or mid-stream
//    disconnect quarantines/detaches only the offending session; the
//    process and every other session keep running.
//  * Admission control: opens are gated on live-session count and summed
//    partitioner footprint; rejected clients get Busy + retry-after, which
//    the client library turns into backoff (queueing without server-side
//    waiter state).
//  * Graceful drain: on request_drain() (SIGTERM via util/shutdown.hpp, or
//    a direct call) the server stops accepting, winds down handlers, and
//    checkpoints every live session into drain_dir using the PR-1 atomic
//    checkpoint format; a restarted server restores them and clients resume
//    by token with byte-identical continuation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/session_registry.hpp"
#include "util/net.hpp"

namespace spnl {

struct ServerOptions {
  Endpoint endpoint;
  SessionRegistry::AdmissionPolicy admission;
  /// Detached/quarantined/finished sessions idle past this are reaped.
  double idle_timeout_seconds = 30.0;
  /// A connection with no complete frame for this long is closed (its
  /// session detaches and stays resumable until the idle reaper fires).
  double read_timeout_seconds = 10.0;
  /// Per-frame write deadline (a peer not draining its socket is dead).
  double io_timeout_seconds = 10.0;
  double reaper_interval_seconds = 0.25;
  /// Where drain checkpoints live; empty disables drain/restore.
  std::string drain_dir;
  /// Hint carried by Busy replies.
  std::uint32_t retry_after_ms = 200;
  std::uint64_t token_seed = 0x53504e4cull;
  /// Poll util/shutdown.hpp's SIGTERM/SIGINT flag from the accept loop and
  /// turn it into request_drain() (the daemon tool arms the flag).
  bool watch_shutdown_flag = false;
  /// Route entries per kRouteChunk frame.
  std::uint32_t route_chunk_entries = 1u << 16;
};

/// Registry counters plus connection-level ones; `reconciles()` (inherited)
/// is the soak test's leak check.
struct ServerStats : RegistryStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t midstream_disconnects = 0;
  std::uint64_t idle_connection_closes = 0;
  std::uint64_t sessions_checkpointed_on_drain = 0;
  std::uint64_t sessions_restored_from_drain = 0;
  bool draining = false;
};

class SpnlServer {
 public:
  explicit SpnlServer(ServerOptions options);
  ~SpnlServer();

  SpnlServer(const SpnlServer&) = delete;
  SpnlServer& operator=(const SpnlServer&) = delete;

  /// Binds the endpoint, restores any drain checkpoints, and spawns the
  /// accept + reaper threads. Throws NetError/CheckpointError on failure.
  void start();

  /// The endpoint clients should dial (tcp port 0 is resolved after bind).
  const Endpoint& endpoint() const { return listener_.endpoint(); }

  /// Asks the server to stop accepting and checkpoint every live session.
  /// Safe from any thread; actual drain work happens in wait().
  void request_drain();

  /// Stop without checkpointing (tests / hard shutdown).
  void request_stop();

  /// Blocks until the server has fully wound down: accept loop exited,
  /// handlers joined, reaper stopped, and — when draining — every live
  /// session checkpointed into drain_dir. Idempotent.
  void wait();

  bool draining() const { return drain_requested_.load(); }
  ServerStats stats() const;

 private:
  void accept_loop();
  void reaper_loop();
  void handle_connection(Socket sock);
  void write_drain_checkpoints();
  std::size_t restore_drain_checkpoints();

  ServerOptions options_;
  ListenSocket listener_;
  SessionRegistry registry_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> started_{false};
  bool wound_down_ = false;

  std::thread accept_thread_;
  std::thread reaper_thread_;
  std::mutex handlers_mutex_;
  std::vector<std::thread> handlers_;

  mutable std::mutex stats_mutex_;
  std::uint64_t connections_accepted_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t midstream_disconnects_ = 0;
  std::uint64_t idle_connection_closes_ = 0;
  std::uint64_t drain_checkpoints_ = 0;
  std::uint64_t drain_restores_ = 0;
};

}  // namespace spnl
