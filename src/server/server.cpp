#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "util/shutdown.hpp"

namespace spnl {

namespace {

/// Handler threads and the accept loop poll shutdown/drain flags at this
/// granularity, so a drain request is honored within ~one slice even while
/// a connection is idle.
constexpr int kPollSliceMs = 100;

int to_ms(double seconds) {
  const double ms = seconds * 1000.0;
  return ms < 1.0 ? 1 : static_cast<int>(ms);
}

}  // namespace

SpnlServer::SpnlServer(ServerOptions options)
    : options_(std::move(options)),
      registry_(options_.admission, options_.token_seed) {}

SpnlServer::~SpnlServer() {
  request_stop();
  try {
    wait();
  } catch (...) {
    // Destructor must not throw; wind-down errors were already surfaced to
    // callers that used wait() directly.
  }
}

void SpnlServer::start() {
  listener_ = ListenSocket(options_.endpoint);
  if (!options_.drain_dir.empty()) {
    std::filesystem::create_directories(options_.drain_dir);
    restore_drain_checkpoints();
  }
  started_.store(true);
  accept_thread_ = std::thread(&SpnlServer::accept_loop, this);
  reaper_thread_ = std::thread(&SpnlServer::reaper_loop, this);
}

void SpnlServer::request_drain() {
  drain_requested_.store(true);
  stop_requested_.store(true);
}

void SpnlServer::request_stop() { stop_requested_.store(true); }

void SpnlServer::wait() {
  if (!started_.load()) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Handlers observe stop_requested_ within one poll slice and exit.
    std::lock_guard lock(handlers_mutex_);
    for (std::thread& handler : handlers_) {
      if (handler.joinable()) handler.join();
    }
    handlers_.clear();
  }
  if (reaper_thread_.joinable()) reaper_thread_.join();
  if (wound_down_) return;
  wound_down_ = true;
  if (drain_requested_.load() && !options_.drain_dir.empty()) {
    write_drain_checkpoints();
  }
}

ServerStats SpnlServer::stats() const {
  ServerStats out;
  static_cast<RegistryStats&>(out) = registry_.stats();
  std::lock_guard lock(stats_mutex_);
  out.connections_accepted = connections_accepted_;
  out.protocol_errors = protocol_errors_;
  out.midstream_disconnects = midstream_disconnects_;
  out.idle_connection_closes = idle_connection_closes_;
  out.sessions_checkpointed_on_drain = drain_checkpoints_;
  out.sessions_restored_from_drain = drain_restores_;
  out.draining = drain_requested_.load();
  return out;
}

void SpnlServer::accept_loop() {
  while (!stop_requested_.load()) {
    if (options_.watch_shutdown_flag && shutdown_requested()) {
      request_drain();
      break;
    }
    std::optional<Socket> conn = listener_.accept(kPollSliceMs);
    if (!conn) continue;
    {
      std::lock_guard lock(stats_mutex_);
      ++connections_accepted_;
    }
    std::lock_guard lock(handlers_mutex_);
    handlers_.emplace_back(
        [this](Socket sock) { handle_connection(std::move(sock)); },
        std::move(*conn));
  }
  // Refuse new connections immediately; in-flight handlers wind down on
  // their own poll slices.
  listener_.close();
}

void SpnlServer::reaper_loop() {
  const auto interval = std::chrono::duration<double>(
      options_.reaper_interval_seconds > 0 ? options_.reaper_interval_seconds
                                           : 0.25);
  while (!stop_requested_.load()) {
    registry_.reap_idle(options_.idle_timeout_seconds);
    std::this_thread::sleep_for(interval);
  }
}

void SpnlServer::handle_connection(Socket sock) {
  const int write_ms = to_ms(options_.io_timeout_seconds);
  const int read_total_ms = to_ms(options_.read_timeout_seconds);
  const int slice_ms = std::min(kPollSliceMs, read_total_ms);

  std::shared_ptr<Session> session;
  auto detach = [&] {
    if (session) {
      session->detach();
      session.reset();
    }
  };
  bool greeted = false;

  try {
    for (;;) {
      if (stop_requested_.load()) {
        if (drain_requested_.load()) {
          // Best-effort: tell the client to come back after the restart.
          try {
            send_error(sock, WireError::kDraining, "server draining", write_ms);
          } catch (...) {
          }
        }
        break;
      }

      // Sliced frame read: reacts to drain within one slice, enforces the
      // full read timeout against slow-loris/idle peers.
      std::optional<Frame> frame;
      bool timed_out = false;
      int waited_ms = 0;
      for (;;) {
        frame = read_frame(sock, slice_ms, &timed_out);
        if (frame || !timed_out) break;
        waited_ms += slice_ms;
        if (stop_requested_.load() || waited_ms >= read_total_ms) break;
      }
      if (stop_requested_.load()) continue;  // top of loop sends kDraining
      if (!frame) {
        if (timed_out) {
          // Slow-loris or just idle: drop the connection; the session (if
          // any) detaches and stays resumable until the idle reaper fires.
          std::lock_guard lock(stats_mutex_);
          ++idle_connection_closes_;
        } else if (session && session->state() == SessionState::kActive) {
          std::lock_guard lock(stats_mutex_);
          ++midstream_disconnects_;
        }
        break;
      }

      if (frame->type == MsgType::kHello) {
        const std::uint32_t version = frame->payload.get_u32();
        if (version != kProtocolVersion) {
          throw ProtocolError("hello: protocol version " +
                              std::to_string(version) + " (server speaks " +
                              std::to_string(kProtocolVersion) + ")");
        }
        greeted = true;
        StateWriter ack;
        ack.put_u32(kProtocolVersion);
        write_frame(sock, MsgType::kHelloAck, ack, write_ms);
        continue;
      }
      if (!greeted) {
        throw ProtocolError(std::string("expected Hello, got ") +
                            msg_type_name(frame->type));
      }

      switch (frame->type) {
        case MsgType::kOpen: {
          if (session) {
            throw ProtocolError("open: a session is already attached");
          }
          const WireSessionConfig config =
              WireSessionConfig::restore(frame->payload);
          std::string reason;
          std::shared_ptr<Session> opened = registry_.open(config, &reason);
          if (!opened) {
            send_busy(sock, options_.retry_after_ms, reason, write_ms);
            break;
          }
          opened->attach();
          session = std::move(opened);
          StateWriter ack;
          ack.put_string(session->token());
          ack.put_u64(session->id());
          write_frame(sock, MsgType::kOpenAck, ack, write_ms);
          break;
        }
        case MsgType::kResume: {
          if (session) {
            throw ProtocolError("resume: a session is already attached");
          }
          const std::string token = frame->payload.get_string();
          std::shared_ptr<Session> found = registry_.find(token);
          if (!found) {
            send_error(sock, WireError::kUnknownSession,
                       "no session for token (expired or never existed)",
                       write_ms);
            break;
          }
          if (!found->attach()) {
            if (found->state() == SessionState::kQuarantined) {
              send_error(sock, WireError::kQuarantined,
                         found->quarantine_reason(), write_ms);
            } else {
              // The previous connection's handler has not yet noticed its
              // EOF and detached — a reconnect race, not a failure. Busy
              // makes the client back off and retry instead of giving up.
              send_busy(sock, options_.retry_after_ms,
                        "session attached to another connection", write_ms);
            }
            break;
          }
          session = std::move(found);
          StateWriter ack;
          ack.put_u64(session->records_received());
          write_frame(sock, MsgType::kResumeAck, ack, write_ms);
          break;
        }
        case MsgType::kRecords: {
          if (!session) {
            throw ProtocolError("records without an open/resumed session");
          }
          const std::uint64_t first_seq = frame->payload.get_u64();
          const auto ids = frame->payload.get_vec<VertexId>();
          const auto degrees = frame->payload.get_vec<std::uint32_t>();
          const auto neighbors = frame->payload.get_vec<VertexId>();
          if (ids.size() != degrees.size()) {
            throw ProtocolError("records: ids/degrees length mismatch");
          }
          const std::uint64_t received =
              session->feed(first_seq, ids, degrees, neighbors);
          StateWriter ack;
          ack.put_u64(received);
          write_frame(sock, MsgType::kRecordsAck, ack, write_ms);
          break;
        }
        case MsgType::kFinish: {
          if (!session) {
            throw ProtocolError("finish without an open/resumed session");
          }
          const std::uint64_t total = frame->payload.get_u64();
          const std::vector<PartitionId>& route = session->finish(total);
          const std::uint32_t chunk = options_.route_chunk_entries > 0
                                          ? options_.route_chunk_entries
                                          : 1u << 16;
          for (std::size_t offset = 0; offset < route.size(); offset += chunk) {
            const std::size_t count = std::min<std::size_t>(chunk, route.size() - offset);
            StateWriter part;
            part.put_u64(offset);
            part.put_vec(std::vector<PartitionId>(route.begin() + offset,
                                                  route.begin() + offset + count));
            write_frame(sock, MsgType::kRouteChunk, part, write_ms);
          }
          StateWriter done;
          done.put_u64(route.size());
          done.put_u32(crc32(route.data(), route.size() * sizeof(PartitionId)));
          write_frame(sock, MsgType::kRouteDone, done, write_ms);
          // Only after the route reached the client does the session leave
          // the registry; a write failure above keeps it finished+resumable
          // so the client can refetch.
          registry_.remove_completed(session->token());
          detach();
          break;
        }
        case MsgType::kBye: {
          detach();
          return;
        }
        default:
          throw ProtocolError(std::string("unexpected message ") +
                              msg_type_name(frame->type));
      }
    }
  } catch (const ProtocolError& e) {
    {
      std::lock_guard lock(stats_mutex_);
      ++protocol_errors_;
    }
    if (session) {
      // Quarantine only the offending session — never the process. The
      // reaper collects it after the idle timeout.
      session->quarantine(e.what());
      registry_.count_quarantined();
    }
    try {
      send_error(sock, e.code(), e.what(), write_ms);
    } catch (...) {
    }
  } catch (const NetError&) {
    // Torn frame or connection reset mid-message: the session stays
    // resumable (records below the committed count are idempotent).
    if (session) {
      std::lock_guard lock(stats_mutex_);
      ++midstream_disconnects_;
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(stats_mutex_);
      ++protocol_errors_;
    }
    try {
      send_error(sock, WireError::kInternal, e.what(), write_ms);
    } catch (...) {
    }
  }
  detach();
}

void SpnlServer::write_drain_checkpoints() {
  for (const std::shared_ptr<Session>& session : registry_.snapshot()) {
    // Poisoned state is not worth persisting: quarantined sessions are
    // dropped at drain (still counted, so reconciliation holds via
    // remove_drained below).
    if (session->state() != SessionState::kQuarantined) {
      StateWriter out;
      session->save(out);
      const std::string path =
          options_.drain_dir + "/" + session->token() + ".ckpt";
      write_checkpoint_file(path, out);
      std::lock_guard lock(stats_mutex_);
      ++drain_checkpoints_;
    }
    registry_.remove_drained(session->token());
  }
}

std::size_t SpnlServer::restore_drain_checkpoints() {
  namespace fs = std::filesystem;
  std::size_t restored = 0;
  if (!fs::exists(options_.drain_dir)) return 0;
  for (const auto& entry : fs::directory_iterator(options_.drain_dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".ckpt") continue;
    const std::string path = entry.path().string();
    try {
      StateReader in = read_checkpoint_file(path);
      registry_.adopt_restored(Session::restore(in));
      fs::remove(entry.path());
      ++restored;
    } catch (const std::exception& e) {
      // A torn/corrupt drain checkpoint loses one session, not the server:
      // set it aside so the next restart does not trip over it again.
      std::fprintf(stderr, "spnl_server: skipping corrupt drain checkpoint %s: %s\n",
                   path.c_str(), e.what());
      std::error_code ec;
      fs::rename(entry.path(), entry.path().string() + ".corrupt", ec);
    }
  }
  std::lock_guard lock(stats_mutex_);
  drain_restores_ += restored;
  return restored;
}

}  // namespace spnl
