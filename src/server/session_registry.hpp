// Token-keyed registry of live sessions plus the admission and reaping
// policy around it.
//
// Admission control is the governor-shaped gate in front of session
// creation: a new session is admitted only while (a) the live session count
// is below max_sessions and (b) the summed partitioner footprint of every
// live session — plus the footprint the new one would add — fits the memory
// budget. A rejected open gets a typed Busy reply with a retry-after hint;
// the client's backoff turns rejection into queueing without the server
// holding per-waiter state that a vanished client would leak.
//
// The reaper provides the leak-freedom half of the soak contract: every
// session eventually leaves the registry through exactly one of
// completed / reaped / drained, and the counters reconcile:
//
//   opened + restored == completed + reaped + drained + live
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/session.hpp"

namespace spnl {

/// Monotonic counters for reconciliation; `live` is the registry size at
/// sampling time, the rest only grow.
struct RegistryStats {
  std::uint64_t opened = 0;
  std::uint64_t restored = 0;
  std::uint64_t completed = 0;
  std::uint64_t reaped = 0;
  std::uint64_t drained = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t live = 0;

  /// The leak-freedom invariant every soak asserts.
  bool reconciles() const {
    return opened + restored == completed + reaped + drained + live;
  }
};

class SessionRegistry {
 public:
  struct AdmissionPolicy {
    std::uint32_t max_sessions = 64;
    /// Summed partitioner footprint across live sessions. 0 = unlimited.
    std::size_t memory_budget_bytes = 0;
  };

  explicit SessionRegistry(AdmissionPolicy policy, std::uint64_t token_seed);

  /// Admission-checked session creation. On admission the session is
  /// registered and returned; on rejection returns nullptr and `reason`
  /// names the refused resource ("sessions" / "memory").
  std::shared_ptr<Session> open(const WireSessionConfig& config,
                                std::string* reason);

  /// Registers a session restored from a drain checkpoint (bypasses
  /// admission — it was admitted before the restart).
  void adopt_restored(std::shared_ptr<Session> session);

  std::shared_ptr<Session> find(const std::string& token) const;

  /// Removes a finished session whose route was delivered.
  void remove_completed(const std::string& token);

  /// Removes sessions idle past `idle_timeout_seconds` (detached and
  /// quarantined ones; an attached session is never reaped — its connection
  /// read timeout fires first and detaches it). Returns the number reaped.
  std::size_t reap_idle(double idle_timeout_seconds);

  /// Snapshot of every live session (drain iterates this).
  std::vector<std::shared_ptr<Session>> snapshot() const;

  /// Removes `session` after a successful drain checkpoint write.
  void remove_drained(const std::string& token);

  void count_quarantined();

  std::size_t total_footprint_bytes() const;
  RegistryStats stats() const;

 private:
  std::size_t footprint_locked() const;

  AdmissionPolicy policy_;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
  std::uint64_t token_seed_;
  RegistryStats stats_;
};

}  // namespace spnl
