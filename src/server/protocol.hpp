// Framed binary protocol spoken between spnl_client and spnl_server.
//
// Every message is one length-prefixed frame:
//
//   u16 magic 0x5350 ("SP") | u8 type | u8 reserved(0) | u32 payload_len
//   | payload bytes
//
// followed by a payload encoded with the checkpoint subsystem's
// StateWriter/StateReader field stream (length-prefixed vectors and strings,
// little-endian PODs) — the server reuses the battle-tested bounds-checked
// reader, so a hostile payload can at worst raise a typed error, never read
// out of bounds. Frames are validated before any payload byte is trusted: a
// bad magic, an unknown type, or a length above kMaxFrameBytes is a
// ProtocolError and the server quarantines only the offending session.
//
// Session lifecycle (docs/server.md has the full state machine):
//
//   client                          server
//   ------                          ------
//   Hello(version)             ->
//                              <-   HelloAck(version)
//   Open(config)               ->
//                              <-   OpenAck(token) | Busy(retry_after)
//   Records(first_seq, batch)  ->
//                              <-   RecordsAck(received_total)
//   ... repeat ...
//   Finish(total_records)      ->
//                              <-   RouteChunk* , RouteDone(crc32)
//
// A disconnected client reconnects and sends Resume(token); the ResumeAck
// carries the server's committed record count so the client re-streams only
// the unacknowledged suffix (records below the committed count are
// idempotently dropped — a retransmit can never double-place a vertex).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/checkpoint.hpp"
#include "graph/types.hpp"
#include "util/net.hpp"

namespace spnl {

/// Protocol version; HelloAck echoes it and mismatches are a typed error so
/// old clients fail loudly instead of misparsing frames.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. Large enough for a 64K-record batch
/// or a 4M-entry route chunk; small enough that a hostile length field can
/// not drive an allocation-of-death.
inline constexpr std::uint32_t kMaxFrameBytes = 32u << 20;

inline constexpr std::uint16_t kFrameMagic = 0x5350;  // "SP"

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kOpen = 3,
  kOpenAck = 4,
  kBusy = 5,        ///< admission control: try again after retry_after_ms
  kResume = 6,
  kResumeAck = 7,
  kRecords = 8,
  kRecordsAck = 9,
  kFinish = 10,
  kRouteChunk = 11,
  kRouteDone = 12,
  kError = 13,
  kBye = 14,        ///< orderly client goodbye (session stays resumable)
};

/// True for byte values that decode to a known MsgType.
bool is_known_msg_type(std::uint8_t type);
const char* msg_type_name(MsgType type);

/// Error codes carried by kError frames.
enum class WireError : std::uint32_t {
  kProtocol = 1,        ///< malformed frame / unexpected message order
  kUnknownSession = 2,  ///< resume token not found (expired or bogus)
  kQuarantined = 3,     ///< this session misbehaved earlier and was isolated
  kSequenceGap = 4,     ///< records frame skipped ahead of the committed count
  kDraining = 5,        ///< server is shutting down; reconnect after restart
  kBadConfig = 6,       ///< open rejected (unknown algo, zero vertices, ...)
  kInternal = 7,
};

const char* wire_error_name(WireError code);

/// Typed failure raised by the codec (torn/garbage frames) and by clients
/// when the server reports a fatal kError.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what,
                         WireError code = WireError::kProtocol)
      : std::runtime_error(what), code_(code) {}
  WireError code() const { return code_; }

 private:
  WireError code_;
};

/// Everything the server needs to instantiate a session's partitioner.
/// Serialized inside kOpen and inside drain checkpoints (so a restored
/// session rebuilds an identical partitioner).
struct WireSessionConfig {
  std::string algo = "spnl";
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_partitions = 2;
  double lambda = 0.5;
  std::uint32_t num_shards = 0;
  std::uint8_t balance = 0;  ///< 0 = vertex, 1 = edge
  double slack = 1.1;

  void save(StateWriter& out) const;
  static WireSessionConfig restore(StateReader& in);
};

/// One decoded frame: the type plus a bounds-checked payload reader.
struct Frame {
  MsgType type = MsgType::kError;
  StateReader payload;
};

/// Writes one frame (header + payload) within `timeout_ms`.
void write_frame(Socket& sock, MsgType type, const StateWriter& payload,
                 int timeout_ms);

/// Writes a payload-less frame.
void write_frame(Socket& sock, MsgType type, int timeout_ms);

/// Reads one frame. nullopt on orderly EOF before any header byte or on
/// timeout with nothing read (`timed_out`, when non-null, tells the two
/// apart). Throws ProtocolError on garbage (bad magic/type/length) and
/// NetError on torn reads or socket failures.
std::optional<Frame> read_frame(Socket& sock, int timeout_ms,
                                bool* timed_out = nullptr);

/// Convenience writers for the small control messages.
void send_error(Socket& sock, WireError code, const std::string& message,
                int timeout_ms);
void send_busy(Socket& sock, std::uint32_t retry_after_ms,
               const std::string& reason, int timeout_ms);

}  // namespace spnl
