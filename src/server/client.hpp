// spnl_client core: streams an adjacency stream to a running spnl_server
// and returns the finished route, surviving the failures a real service
// client must survive.
//
// Retry policy: every transport-level failure (refused connect, torn frame,
// reset, server restart) costs one attempt and is retried after an
// exponential backoff with deterministic jitter:
//
//   delay = min(backoff_max, backoff_base << attempt) * uniform(0.5, 1.5)
//
// A Busy reply (admission control) honors max(server retry-after hint,
// current backoff) and does NOT consume an attempt — being queued is not a
// failure. The whole run is bounded by a wall-clock deadline budget;
// exceeding it (or the attempt budget) raises a typed ClientError.
//
// Resume: the first successful Open yields a server-issued session token.
// After a reconnect the client sends Resume(token); the ResumeAck carries
// the server's committed record count, and the client rewinds its stream
// and re-sends only the unacknowledged suffix. Records the server already
// committed are dropped server-side (sequence numbers), so retransmission
// around a torn ack is safe.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "server/protocol.hpp"
#include "util/net.hpp"

namespace spnl {

/// Typed client failure: deadline exhausted, attempts exhausted, or a fatal
/// server-reported error (bad config, quarantined session).
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  Endpoint endpoint;
  /// Wall-clock budget for the whole partition() call. 0 = unbounded.
  double deadline_seconds = 0.0;
  /// Transport failures tolerated before giving up.
  std::uint32_t max_attempts = 8;
  std::uint32_t backoff_base_ms = 50;
  std::uint32_t backoff_max_ms = 2000;
  /// Seed for the deterministic backoff jitter.
  std::uint64_t jitter_seed = 1;
  /// Records per kRecords frame.
  std::uint32_t batch_records = 256;
  /// Per-socket-operation timeout.
  double io_timeout_seconds = 10.0;

  /// Fault injection for soak/smoke tests: after acking this many records,
  /// drop the connection once mid-stream and exercise the resume path.
  /// 0 = off.
  std::uint64_t inject_disconnect_after_records = 0;
};

struct ClientRunResult {
  std::vector<PartitionId> route;
  std::string token;
  std::uint32_t attempts = 1;      ///< connection attempts consumed
  std::uint64_t busy_retries = 0;  ///< admission-control Busy replies honored
  std::uint64_t reconnects = 0;    ///< successful resumes after a failure
  std::uint64_t injected_disconnects = 0;
};

class SpnlClient {
 public:
  explicit SpnlClient(ClientOptions options) : options_(std::move(options)) {}

  /// Streams `stream` (reset()-able; re-wound internally on resume) to the
  /// server and returns the route. Throws ClientError when the deadline or
  /// attempt budget is exhausted or the server reports a fatal error.
  ClientRunResult partition(AdjacencyStream& stream,
                            const WireSessionConfig& config);

 private:
  ClientOptions options_;
};

}  // namespace spnl
