#include "server/session_registry.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace spnl {

namespace {

std::string make_token(std::uint64_t seed, std::uint64_t id) {
  // Two mixed words -> 32 hex chars. Unguessable enough to stop accidental
  // cross-session resumes; this is an authz hint, not a security boundary
  // (the socket itself is the trust boundary).
  const std::uint64_t a = mix64(seed ^ id);
  const std::uint64_t b = mix64(a ^ 0xa5a5a5a5a5a5a5a5ull);
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return std::string(buf);
}

}  // namespace

SessionRegistry::SessionRegistry(AdmissionPolicy policy, std::uint64_t token_seed)
    : policy_(policy), token_seed_(token_seed) {}

std::shared_ptr<Session> SessionRegistry::open(const WireSessionConfig& config,
                                               std::string* reason) {
  // The candidate partitioner is built outside the lock (allocation-heavy),
  // then admission is judged with its real footprint — no estimate drift.
  const std::uint64_t id = [&] {
    std::lock_guard lock(mutex_);
    return next_id_++;
  }();
  auto session =
      std::make_shared<Session>(make_token(token_seed_, id), id, config);
  const std::size_t incoming = session->memory_footprint_bytes();

  std::lock_guard lock(mutex_);
  if (sessions_.size() >= policy_.max_sessions) {
    if (reason != nullptr) {
      *reason = "sessions (" + std::to_string(sessions_.size()) + "/" +
                std::to_string(policy_.max_sessions) + ")";
    }
    ++stats_.rejected_busy;
    return nullptr;
  }
  if (policy_.memory_budget_bytes > 0 &&
      footprint_locked() + incoming > policy_.memory_budget_bytes) {
    if (reason != nullptr) *reason = "memory";
    ++stats_.rejected_busy;
    return nullptr;
  }
  sessions_.push_back(session);
  ++stats_.opened;
  return session;
}

void SessionRegistry::adopt_restored(std::shared_ptr<Session> session) {
  std::lock_guard lock(mutex_);
  next_id_ = std::max(next_id_, session->id() + 1);
  sessions_.push_back(std::move(session));
  ++stats_.restored;
}

std::shared_ptr<Session> SessionRegistry::find(const std::string& token) const {
  std::lock_guard lock(mutex_);
  for (const auto& session : sessions_) {
    if (session->token() == token) return session;
  }
  return nullptr;
}

void SessionRegistry::remove_completed(const std::string& token) {
  std::lock_guard lock(mutex_);
  auto it = std::find_if(sessions_.begin(), sessions_.end(),
                         [&](const auto& s) { return s->token() == token; });
  if (it != sessions_.end()) {
    sessions_.erase(it);
    ++stats_.completed;
  }
}

std::size_t SessionRegistry::reap_idle(double idle_timeout_seconds) {
  std::lock_guard lock(mutex_);
  std::size_t reaped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const auto& session = *it;
    const SessionState state = session->state();
    const bool reapable =
        state == SessionState::kDetached || state == SessionState::kQuarantined ||
        state == SessionState::kFinished;
    if (reapable && session->idle_seconds() >= idle_timeout_seconds) {
      it = sessions_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  stats_.reaped += reaped;
  return reaped;
}

std::vector<std::shared_ptr<Session>> SessionRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  return sessions_;
}

void SessionRegistry::remove_drained(const std::string& token) {
  std::lock_guard lock(mutex_);
  auto it = std::find_if(sessions_.begin(), sessions_.end(),
                         [&](const auto& s) { return s->token() == token; });
  if (it != sessions_.end()) {
    sessions_.erase(it);
    ++stats_.drained;
  }
}

void SessionRegistry::count_quarantined() {
  std::lock_guard lock(mutex_);
  ++stats_.quarantined;
}

std::size_t SessionRegistry::total_footprint_bytes() const {
  std::lock_guard lock(mutex_);
  return footprint_locked();
}

RegistryStats SessionRegistry::stats() const {
  std::lock_guard lock(mutex_);
  RegistryStats out = stats_;
  out.live = sessions_.size();
  return out;
}

std::size_t SessionRegistry::footprint_locked() const {
  std::size_t total = 0;
  for (const auto& session : sessions_) {
    total += session->memory_footprint_bytes();
  }
  return total;
}

}  // namespace spnl
