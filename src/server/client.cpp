#include "server/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

/// Internal control-flow signals for the retry loop; never escape partition().
struct Retryable {
  std::string what;
};
struct BusySignal {
  std::uint32_t retry_after_ms;
  std::string reason;
};
struct SessionLost {};  // resume token expired server-side: restart fresh

int to_ms(double seconds) {
  const double ms = seconds * 1000.0;
  return ms < 1.0 ? 1 : static_cast<int>(ms);
}

/// Reads the next frame, translating transport endings into Retryable.
Frame expect_frame(Socket& sock, int timeout_ms) {
  std::optional<Frame> frame = read_frame(sock, timeout_ms);
  if (!frame) throw Retryable{"server closed the connection"};
  return std::move(*frame);
}

/// Decodes a kError frame into the retry policy's vocabulary: draining is
/// retryable (the restarted server will restore the session), an expired
/// token restarts fresh, everything else is fatal.
[[noreturn]] void raise_wire_error(StateReader& payload) {
  const auto code = static_cast<WireError>(payload.get_u32());
  const std::string message = payload.get_string();
  if (code == WireError::kDraining) {
    throw Retryable{"server draining: " + message};
  }
  if (code == WireError::kUnknownSession) throw SessionLost{};
  throw ClientError(std::string("server error (") + wire_error_name(code) +
                    "): " + message);
}

}  // namespace

ClientRunResult SpnlClient::partition(AdjacencyStream& stream,
                                      const WireSessionConfig& config) {
  ClientRunResult result;
  Timer elapsed;
  SplitMix64 jitter(options_.jitter_seed);
  const int io_ms = to_ms(options_.io_timeout_seconds);
  const std::uint64_t total_records = config.num_vertices;
  std::uint64_t received = 0;  // server-committed record count
  std::uint32_t failures = 0;
  bool injected = false;

  auto remaining_seconds = [&]() -> double {
    if (options_.deadline_seconds <= 0.0) return 1e18;
    return options_.deadline_seconds - elapsed.seconds();
  };
  auto check_deadline = [&] {
    if (remaining_seconds() <= 0.0) {
      throw ClientError("deadline budget (" +
                        std::to_string(options_.deadline_seconds) +
                        "s) exhausted after " + std::to_string(failures) +
                        " failed attempt(s)");
    }
  };
  auto backoff_sleep = [&](std::uint32_t floor_ms) {
    const std::uint32_t shift = std::min(failures, 20u);
    std::uint64_t delay = std::min<std::uint64_t>(
        options_.backoff_max_ms,
        static_cast<std::uint64_t>(options_.backoff_base_ms) << shift);
    delay = std::max<std::uint64_t>(delay, floor_ms);
    // Deterministic jitter in [0.5, 1.5): decorrelates a thundering herd of
    // clients retrying after one server restart without sacrificing test
    // reproducibility.
    const double factor = 0.5 + static_cast<double>(jitter.next() % 1024) / 1024.0;
    delay = static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
    const double cap = remaining_seconds() * 1000.0;
    if (cap > 0 && static_cast<double>(delay) > cap) {
      delay = static_cast<std::uint64_t>(cap);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  };

  for (;;) {
    check_deadline();
    if (failures >= options_.max_attempts) {
      throw ClientError("attempt budget (" +
                        std::to_string(options_.max_attempts) +
                        ") exhausted");
    }
    try {
      Socket sock = connect_endpoint(options_.endpoint,
                                     to_ms(std::min(remaining_seconds(),
                                                    options_.io_timeout_seconds)));

      StateWriter hello;
      hello.put_u32(kProtocolVersion);
      write_frame(sock, MsgType::kHello, hello, io_ms);
      Frame ack = expect_frame(sock, io_ms);
      if (ack.type == MsgType::kError) raise_wire_error(ack.payload);
      if (ack.type != MsgType::kHelloAck) {
        throw ClientError(std::string("expected HelloAck, got ") +
                          msg_type_name(ack.type));
      }
      ack.payload.get_u32();  // server's version (equal or it errored)

      if (result.token.empty()) {
        StateWriter open;
        config.save(open);
        write_frame(sock, MsgType::kOpen, open, io_ms);
        Frame reply = expect_frame(sock, io_ms);
        if (reply.type == MsgType::kBusy) {
          const std::uint32_t hint = reply.payload.get_u32();
          throw BusySignal{hint, reply.payload.get_string()};
        }
        if (reply.type == MsgType::kError) raise_wire_error(reply.payload);
        if (reply.type != MsgType::kOpenAck) {
          throw ClientError(std::string("expected OpenAck, got ") +
                            msg_type_name(reply.type));
        }
        result.token = reply.payload.get_string();
        reply.payload.get_u64();  // session id (informational)
      } else {
        StateWriter resume;
        resume.put_string(result.token);
        write_frame(sock, MsgType::kResume, resume, io_ms);
        Frame reply = expect_frame(sock, io_ms);
        if (reply.type == MsgType::kBusy) {
          const std::uint32_t hint = reply.payload.get_u32();
          throw BusySignal{hint, reply.payload.get_string()};
        }
        if (reply.type == MsgType::kError) raise_wire_error(reply.payload);
        if (reply.type != MsgType::kResumeAck) {
          throw ClientError(std::string("expected ResumeAck, got ") +
                            msg_type_name(reply.type));
        }
        received = reply.payload.get_u64();
        ++result.reconnects;
      }

      // Stream the unacknowledged suffix. The stream is rewound and the
      // committed prefix skipped — the server drops any overlap anyway
      // (idempotent sequence numbers), but not re-reading it saves the wire.
      stream.reset();
      for (std::uint64_t i = 0; i < received; ++i) {
        if (!stream.next()) {
          throw ClientError("stream shorter than server-committed prefix (" +
                            std::to_string(received) + ")");
        }
      }

      std::uint64_t next_seq = received;
      std::vector<VertexId> ids;
      std::vector<std::uint32_t> degrees;
      std::vector<VertexId> neighbors;
      const std::uint32_t batch = std::max(1u, options_.batch_records);
      while (next_seq < total_records) {
        ids.clear();
        degrees.clear();
        neighbors.clear();
        while (ids.size() < batch && next_seq + ids.size() < total_records) {
          std::optional<VertexRecord> record = stream.next();
          if (!record) {
            throw ClientError("stream ended at record " +
                              std::to_string(next_seq + ids.size()) + " of " +
                              std::to_string(total_records));
          }
          ids.push_back(record->id);
          degrees.push_back(static_cast<std::uint32_t>(record->out.size()));
          neighbors.insert(neighbors.end(), record->out.begin(), record->out.end());
        }
        StateWriter frame;
        frame.put_u64(next_seq);
        frame.put_vec(ids);
        frame.put_vec(degrees);
        frame.put_vec(neighbors);
        write_frame(sock, MsgType::kRecords, frame, io_ms);
        Frame reply = expect_frame(sock, io_ms);
        if (reply.type == MsgType::kError) raise_wire_error(reply.payload);
        if (reply.type != MsgType::kRecordsAck) {
          throw ClientError(std::string("expected RecordsAck, got ") +
                            msg_type_name(reply.type));
        }
        received = reply.payload.get_u64();
        next_seq = received;

        if (options_.inject_disconnect_after_records > 0 && !injected &&
            received >= options_.inject_disconnect_after_records &&
            next_seq < total_records) {
          injected = true;
          ++result.injected_disconnects;
          sock.close();
          throw Retryable{"injected mid-stream disconnect"};
        }
      }

      StateWriter finish;
      finish.put_u64(total_records);
      write_frame(sock, MsgType::kFinish, finish, io_ms);
      std::vector<PartitionId> route(config.num_vertices, kUnassigned);
      for (;;) {
        Frame reply = expect_frame(sock, io_ms);
        if (reply.type == MsgType::kError) raise_wire_error(reply.payload);
        if (reply.type == MsgType::kRouteChunk) {
          const std::uint64_t offset = reply.payload.get_u64();
          const auto part = reply.payload.get_vec<PartitionId>();
          if (offset + part.size() > route.size()) {
            throw ClientError("route chunk overruns route table");
          }
          std::copy(part.begin(), part.end(), route.begin() + offset);
          continue;
        }
        if (reply.type == MsgType::kRouteDone) {
          const std::uint64_t n = reply.payload.get_u64();
          const std::uint32_t crc = reply.payload.get_u32();
          if (n != route.size()) {
            throw ClientError("route size mismatch (" + std::to_string(n) +
                              " vs " + std::to_string(route.size()) + ")");
          }
          if (crc32(route.data(), route.size() * sizeof(PartitionId)) != crc) {
            throw ClientError("route CRC mismatch (corrupt transfer)");
          }
          break;
        }
        throw ClientError(std::string("expected RouteChunk/RouteDone, got ") +
                          msg_type_name(reply.type));
      }
      write_frame(sock, MsgType::kBye, io_ms);
      result.route = std::move(route);
      result.attempts = failures + 1;
      return result;
    } catch (const Retryable& r) {
      ++failures;
      check_deadline();
      if (failures >= options_.max_attempts) {
        throw ClientError("attempt budget (" +
                          std::to_string(options_.max_attempts) +
                          ") exhausted; last failure: " + r.what);
      }
      backoff_sleep(0);
    } catch (const BusySignal& busy) {
      // Admission pushback is queueing, not failure: no attempt consumed.
      ++result.busy_retries;
      check_deadline();
      backoff_sleep(busy.retry_after_ms);
    } catch (const SessionLost&) {
      // The server reaped our session (or never saw it): restart fresh.
      // Correctness is preserved — a reaped session has no partial state,
      // so a fresh session replays every record.
      ++failures;
      result.token.clear();
      received = 0;
      check_deadline();
      backoff_sleep(0);
    } catch (const NetError& e) {
      ++failures;
      check_deadline();
      if (failures >= options_.max_attempts) {
        throw ClientError("attempt budget (" +
                          std::to_string(options_.max_attempts) +
                          ") exhausted; last failure: " + e.what());
      }
      backoff_sleep(0);
    } catch (const ProtocolError& e) {
      // Garbage from the server side of the wire: treat as transport loss.
      ++failures;
      check_deadline();
      if (failures >= options_.max_attempts) {
        throw ClientError("attempt budget (" +
                          std::to_string(options_.max_attempts) +
                          ") exhausted; last failure: " + e.what());
      }
      backoff_sleep(0);
    }
  }
}

}  // namespace spnl
