// One partitioning session: a streaming partitioner plus the bookkeeping
// that makes it safe to drive over an unreliable connection.
//
// A session is keyed by a server-issued token and decoupled from any single
// TCP/unix connection: the connection that feeds it may die and a new one
// may resume it. Robustness invariants:
//
//  * Idempotent ingest — records carry sequence numbers; anything below the
//    committed count is dropped, so a client that retransmits after a torn
//    ack can never double-place a vertex (placement is irrevocable, Sec. II).
//  * Single writer — at most one connection is attached at a time; a second
//    connection presenting the same token while attached is rejected (a
//    zombie connection's read timeout detaches it first).
//  * Quarantine — a malformed frame or sequence gap poisons only this
//    session; it stops accepting records and the reaper collects it.
//  * Drain/restore — save() serializes config + progress + full partitioner
//    state through the PR-1 checkpoint contract, so a restored session
//    continues byte-identically.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "partition/partitioning.hpp"
#include "server/protocol.hpp"

namespace spnl {

/// Builds the partitioner a session config asks for. Supported algos: spnl,
/// spn, ldg, fennel, hash, range — all checkpoint-capable, which drain
/// requires. Throws ProtocolError(kBadConfig) on an unknown algo or
/// degenerate dimensions.
std::unique_ptr<StreamingPartitioner> make_session_partitioner(
    const WireSessionConfig& config);

enum class SessionState : std::uint8_t {
  kActive,       ///< a connection is attached and feeding records
  kDetached,     ///< no connection; resumable until the idle reaper fires
  kFinished,     ///< route delivered; kept only until removal
  kQuarantined,  ///< misbehaved; rejects everything, awaits the reaper
};

const char* session_state_name(SessionState state);

class Session {
 public:
  Session(std::string token, std::uint64_t id, const WireSessionConfig& config);

  /// Rebuilds a drained session from a checkpoint payload written by save().
  static std::unique_ptr<Session> restore(StateReader& in);
  void save(StateWriter& out) const;

  const std::string& token() const { return token_; }
  std::uint64_t id() const { return id_; }
  const WireSessionConfig& config() const { return config_; }

  /// Attach/detach the (single) feeding connection. attach() fails when a
  /// connection is already attached or the session cannot take records.
  bool attach();
  void detach();

  /// Ingests one batch starting at sequence `first_seq`. Records below the
  /// committed count are skipped (idempotent retransmit); a gap above it
  /// quarantines the session and throws ProtocolError(kSequenceGap).
  /// Returns the new committed count.
  std::uint64_t feed(std::uint64_t first_seq,
                     std::span<const VertexId> ids,
                     std::span<const std::uint32_t> degrees,
                     std::span<const VertexId> neighbors);

  /// Completes the session: verifies the committed count equals
  /// `total_records` (mismatch quarantines) and returns the route.
  const std::vector<PartitionId>& finish(std::uint64_t total_records);

  void quarantine(const std::string& reason);

  SessionState state() const;
  std::uint64_t records_received() const;
  std::size_t memory_footprint_bytes() const;
  const std::string& quarantine_reason() const { return quarantine_reason_; }

  /// Seconds since the session last made progress (fed/attached/created).
  double idle_seconds() const;
  void touch();

 private:
  Session() = default;

  mutable std::mutex mutex_;
  std::string token_;
  std::uint64_t id_ = 0;
  WireSessionConfig config_;
  std::unique_ptr<StreamingPartitioner> partitioner_;
  std::uint64_t received_ = 0;
  SessionState state_ = SessionState::kDetached;
  bool attached_ = false;
  std::string quarantine_reason_;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace spnl
